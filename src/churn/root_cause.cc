#include "churn/root_cause.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/string_util.h"

namespace telco {

namespace {

struct CauseFeatureSpec {
  const char* name;
  double direction;  // +1: higher is worse
};

// Cause -> interpretable wide-table features. Directions encode the
// domain reading (e.g. low balance is bad, high RTT is bad).
const std::vector<CauseFeatureSpec>& SpecsFor(ChurnCause cause) {
  static const std::vector<CauseFeatureSpec> kNetwork = {
      {"call_drop_rate", +1.0},
      {"e2e_conn_delay", +1.0},
      {"tcp_rtt", +1.0},
      {"page_resp_delay", +1.0},
      {"page_browse_delay", +1.0},
      {"call_succ_rate", -1.0},
      {"page_resp_succ_rate", -1.0},
  };
  static const std::vector<CauseFeatureSpec> kFinancial = {
      {"balance", -1.0},
      {"total_charge", -1.0},
      {"balance_rate", -1.0},
  };
  static const std::vector<CauseFeatureSpec> kEngagement = {
      {"voice_trend", -1.0},
      {"flux_trend", -1.0},
      {"voice_dur", -1.0},
      {"gprs_all_flux", -1.0},
  };
  static const std::vector<CauseFeatureSpec> kSocial = {
      {"cooc_lp_churn", +1.0},
      {"call_lp_churn", +1.0},
      {"msg_lp_churn", +1.0},
  };
  static const std::vector<CauseFeatureSpec> kEmpty = {};
  switch (cause) {
    case ChurnCause::kNetworkQuality:
      return kNetwork;
    case ChurnCause::kFinancial:
      return kFinancial;
    case ChurnCause::kEngagementDecline:
      return kEngagement;
    case ChurnCause::kSocialContagion:
      return kSocial;
    case ChurnCause::kCompetitorPull:
      return kEmpty;  // handled via the search-topic block
  }
  return kEmpty;
}

}  // namespace

const char* ChurnCauseToString(ChurnCause cause) {
  switch (cause) {
    case ChurnCause::kNetworkQuality:
      return "network-quality";
    case ChurnCause::kFinancial:
      return "financial";
    case ChurnCause::kEngagementDecline:
      return "engagement-decline";
    case ChurnCause::kSocialContagion:
      return "social-contagion";
    case ChurnCause::kCompetitorPull:
      return "competitor-pull";
  }
  return "unknown";
}

Result<RootCauseAnalyzer> RootCauseAnalyzer::Fit(const WideTable& wide) {
  if (wide.table == nullptr || wide.table->num_rows() == 0) {
    return Status::InvalidArgument("empty wide table");
  }
  RootCauseAnalyzer analyzer;
  analyzer.table_ = wide.table;

  TELCO_ASSIGN_OR_RETURN(const size_t imsi_col,
                         wide.table->schema().GetFieldIndex("imsi"));
  const Column& imsi = wide.table->column(imsi_col);
  analyzer.row_of_.reserve(wide.table->num_rows() * 2);
  for (size_t r = 0; r < wide.table->num_rows(); ++r) {
    analyzer.row_of_.emplace(imsi.GetInt64(r), r);
  }

  auto fit_stat = [&](const std::string& name,
                      double direction) -> Result<FeatureStat> {
    TELCO_ASSIGN_OR_RETURN(const size_t col,
                           wide.table->schema().GetFieldIndex(name));
    const Column& c = wide.table->column(col);
    std::vector<double> values;
    values.reserve(c.size());
    for (size_t r = 0; r < c.size(); ++r) {
      if (!c.IsNull(r)) values.push_back(c.GetNumeric(r));
    }
    if (values.empty()) {
      return Status::InvalidArgument("feature '" + name + "' is all null");
    }
    FeatureStat stat;
    stat.column = col;
    stat.direction = direction;
    stat.median = Quantile(values, 0.5);
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double v : values) deviations.push_back(std::fabs(v - stat.median));
    // 1.4826 * MAD estimates the standard deviation for normal data.
    stat.mad = std::max(1.4826 * Quantile(deviations, 0.5), 1e-9);
    return stat;
  };

  analyzer.cause_stats_.resize(kNumChurnCauses);
  for (int c = 0; c < kNumChurnCauses; ++c) {
    for (const auto& spec : SpecsFor(static_cast<ChurnCause>(c))) {
      TELCO_ASSIGN_OR_RETURN(FeatureStat stat,
                             fit_stat(spec.name, spec.direction));
      analyzer.cause_stats_[c].push_back(stat);
    }
  }
  // Competitor pull: any single search topic unusually dominant. Topic
  // proportions cluster near 0 for most customers, so the raw MAD is
  // tiny and would produce astronomic z-scores; floor it at a meaningful
  // probability-scale spread.
  for (const auto& name :
       wide.FamilyColumns(FeatureFamily::kF8SearchTopics)) {
    TELCO_ASSIGN_OR_RETURN(FeatureStat stat, fit_stat(name, +1.0));
    stat.mad = std::max(stat.mad, 0.15);
    analyzer.search_topics_.push_back(stat);
  }
  if (analyzer.search_topics_.empty()) {
    return Status::InvalidArgument("wide table has no search-topic block");
  }
  return analyzer;
}

double RootCauseAnalyzer::Severity(const std::vector<FeatureStat>& stats,
                                   size_t row) const {
  // Mean signed z-score over the cause's features (nulls contribute 0).
  if (stats.empty()) return 0.0;
  double total = 0.0;
  for (const FeatureStat& stat : stats) {
    const Column& c = table_->column(stat.column);
    if (c.IsNull(row)) continue;
    total += stat.direction * (c.GetNumeric(row) - stat.median) / stat.mad;
  }
  return total / static_cast<double>(stats.size());
}

Result<std::vector<CauseScore>> RootCauseAnalyzer::AnalyzeRow(
    size_t row) const {
  if (row >= table_->num_rows()) {
    return Status::OutOfRange("row out of range");
  }
  std::vector<CauseScore> out;
  out.reserve(kNumChurnCauses);
  for (int c = 0; c < kNumChurnCauses; ++c) {
    const auto cause = static_cast<ChurnCause>(c);
    double score;
    if (cause == ChurnCause::kCompetitorPull) {
      // The most anomalously dominant search topic: "potential churners
      // may access other operators' portal, search other operators'
      // hotline" — an unusual concentration on one topic.
      score = 0.0;
      for (const FeatureStat& stat : search_topics_) {
        const Column& col = table_->column(stat.column);
        if (col.IsNull(row)) continue;
        score = std::max(score,
                         (col.GetNumeric(row) - stat.median) / stat.mad);
      }
      // Rescale: a single hot topic among K is weaker evidence than a
      // full multi-feature agreement, so damp it.
      score *= 0.5;
    } else {
      score = Severity(cause_stats_[c], row);
    }
    out.push_back(CauseScore{cause, score});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CauseScore& a, const CauseScore& b) {
                     return a.score > b.score;
                   });
  return out;
}

Result<std::vector<CauseScore>> RootCauseAnalyzer::AnalyzeImsi(
    int64_t imsi) const {
  const auto it = row_of_.find(imsi);
  if (it == row_of_.end()) {
    return Status::NotFound(
        StrFormat("imsi %lld not in the fitted wide table",
                  static_cast<long long>(imsi)));
  }
  return AnalyzeRow(it->second);
}

Result<std::string> RootCauseAnalyzer::Report(int64_t imsi) const {
  TELCO_ASSIGN_OR_RETURN(const std::vector<CauseScore> causes,
                         AnalyzeImsi(imsi));
  std::string out = StrFormat("imsi %lld:", static_cast<long long>(imsi));
  for (size_t i = 0; i < causes.size(); ++i) {
    out += StrFormat(" %s%s=%.2f", i == 0 ? "**" : "",
                     ChurnCauseToString(causes[i].cause), causes[i].score);
    if (i == 0) out += "**";
  }
  return out;
}

}  // namespace telco
