#include "churn/pipeline.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "churn/checkpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "features/churn_labels.h"
#include "ml/serialize.h"
#include "storage/atomic_file.h"

namespace telco {

namespace {

// A checkpointed stage either replays from disk or recomputes; the pair of
// counters shows how much work a resume actually saved.
void RecordStageReplayed() {
  static const Counter replayed =
      MetricsRegistry::Global().GetCounter("churn.pipeline.stages_replayed");
  replayed.Add();
}

void RecordStageRecomputed() {
  static const Counter recomputed =
      MetricsRegistry::Global().GetCounter("churn.pipeline.stages_recomputed");
  recomputed.Add();
}

// The prediction checkpoint: the final ranked list, one row per scored
// customer, with scores at full precision so a replayed run is
// bit-identical to the run that wrote it.
std::string PredictionToCsv(const ChurnPrediction& prediction) {
  std::ostringstream out;
  out << "rank,imsi,score,label\n";
  for (size_t i = 0; i < prediction.imsis.size(); ++i) {
    out << i + 1 << ',' << prediction.imsis[i] << ','
        << StrFormat("%.17g", prediction.scores[i]) << ','
        << prediction.labels[i] << '\n';
  }
  return out.str();
}

Result<ChurnPrediction> PredictionFromCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "rank,imsi,score,label") {
    return Status::IoError("unrecognised prediction checkpoint header");
  }
  ChurnPrediction prediction;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto parts = Split(line, ',');
    if (parts.size() != 4) {
      return Status::IoError("malformed prediction checkpoint row '" + line +
                             "'");
    }
    prediction.imsis.push_back(std::strtoll(parts[1].c_str(), nullptr, 10));
    prediction.scores.push_back(std::strtod(parts[2].c_str(), nullptr));
    prediction.labels.push_back(std::atoi(parts[3].c_str()));
  }
  return prediction;
}

}  // namespace

std::vector<ScoredInstance> ChurnPrediction::ToScoredInstances() const {
  std::vector<ScoredInstance> out;
  out.reserve(imsis.size());
  for (size_t i = 0; i < imsis.size(); ++i) {
    out.push_back(ScoredInstance{scores[i], labels[i] == 1});
  }
  return out;
}

ChurnPipeline::ChurnPipeline(Catalog* catalog, PipelineOptions options,
                             WideTableBuilder* shared_builder)
    : catalog_(catalog), options_(std::move(options)) {
  TELCO_CHECK(catalog_ != nullptr);
  if (options_.num_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.num_threads));
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::Default();
  }
  if (options_.wide.pool == nullptr) options_.wide.pool = pool_;
  if (options_.model.pool == nullptr) options_.model.pool = pool_;
  if (shared_builder != nullptr) {
    wide_builder_ = shared_builder;
  } else {
    owned_builder_ =
        std::make_unique<WideTableBuilder>(catalog, options_.wide);
    wide_builder_ = owned_builder_.get();
  }
}

Result<WideTable> ChurnPipeline::BuildWideCheckpointed(int month) {
  PipelineCheckpoint* cp = options_.checkpoint;
  if (cp == nullptr || wide_checkpointed_.count(month) > 0) {
    return wide_builder_->Build(month);  // memoised after the first touch
  }
  const std::string stage = StrFormat("wide_m%d", month);
  if (cp->HasStage(stage)) {
    Result<WideTable> restored = cp->LoadWideTable(stage);
    if (restored.ok()) {
      wide_builder_->InjectCached(month, std::move(restored).ValueOrDie());
      wide_checkpointed_.insert(month);
      RecordStageReplayed();
      return wide_builder_->Build(month);
    }
    // Fail-open: a corrupt artifact costs a recompute, never the run.
    TELCO_LOG(Warning) << "checkpoint stage " << stage << " unusable ("
                       << restored.status().ToString() << "); recomputing";
  }
  TELCO_ASSIGN_OR_RETURN(WideTable wide, wide_builder_->Build(month));
  TELCO_RETURN_NOT_OK(cp->SaveWideTable(stage, wide));
  wide_checkpointed_.insert(month);
  RecordStageRecomputed();
  return wide;
}

Result<std::unordered_map<int64_t, int>>
ChurnPipeline::LoadLabelsCheckpointed(int month) {
  PipelineCheckpoint* cp = options_.checkpoint;
  if (cp == nullptr) return LoadChurnLabels(*catalog_, month);
  const std::string stage = StrFormat("labels_m%d", month);
  if (cp->HasStage(stage)) {
    Result<std::unordered_map<int64_t, int>> restored = cp->LoadLabels(stage);
    if (restored.ok()) {
      RecordStageReplayed();
      return restored;
    }
    TELCO_LOG(Warning) << "checkpoint stage " << stage << " unusable ("
                       << restored.status().ToString() << "); recomputing";
  }
  TELCO_ASSIGN_OR_RETURN(auto labels, LoadChurnLabels(*catalog_, month));
  TELCO_RETURN_NOT_OK(cp->SaveLabels(stage, labels));
  RecordStageRecomputed();
  return labels;
}

Result<bool> ChurnPipeline::TryRestoreModel() {
  PipelineCheckpoint* cp = options_.checkpoint;
  if (cp == nullptr || !cp->HasStage("model")) return false;
  if (options_.model.kind != ClassifierKind::kRandomForest) return false;
  Result<ForestArtifact> loaded = cp->LoadForest("model");
  if (!loaded.ok()) {
    TELCO_LOG(Warning) << "checkpointed model unusable ("
                       << loaded.status().ToString() << "); retraining";
    return false;
  }
  ForestArtifact artifact = std::move(loaded).ValueOrDie();
  auto model = std::make_unique<ChurnModel>(options_.model);
  TELCO_RETURN_NOT_OK(model->RestoreForest(std::move(artifact.forest)));
  model_ = std::move(model);
  model_features_ = std::move(artifact.features);
  RecordStageReplayed();
  return true;
}

Status ChurnPipeline::TrainWindow(int last_label_month) {
  const int gap = options_.early_months;
  const int first_train_label =
      last_label_month - options_.training_months + 1;
  if (first_train_label - gap < 1) {
    return Status::InvalidArgument(StrFormat(
        "training window needs label months %d..%d with feature gap %d; "
        "not enough history",
        first_train_label, last_label_month, gap));
  }
  static const Counter train_rows =
      MetricsRegistry::Global().GetCounter("churn.pipeline.train_rows");

  Dataset train({});
  {
    ScopedStageTimer timer(&timings_, "features_train");
    bool first = true;
    for (int label_month = first_train_label;
         label_month <= last_label_month; ++label_month) {
      TELCO_ASSIGN_OR_RETURN(
          Dataset month_data,
          BuildMonthDataset(label_month - gap, label_month));
      if (first) {
        train = std::move(month_data);
        first = false;
      } else {
        TELCO_RETURN_NOT_OK(train.Append(month_data));
      }
    }
  }

  train_rows.Add(train.num_rows());
  model_ = std::make_unique<ChurnModel>(options_.model);
  {
    ScopedStageTimer timer(&timings_, "train");
    TELCO_RETURN_NOT_OK(model_->Train(train));
  }
  model_features_ = train.feature_names();
  return Status::OK();
}

Status ChurnPipeline::TrainOnly(int last_label_month) {
  timings_.Clear();
  return TrainWindow(last_label_month);
}

Status ChurnPipeline::SaveModel(const std::string& path) const {
  if (model_ == nullptr || model_->forest() == nullptr) {
    return Status::Internal(
        "no trained random-forest model to save (run TrainOnly or "
        "TrainAndPredict with an RF model first)");
  }
  TELCO_RETURN_NOT_OK(SaveRandomForest(*model_->forest(), path));
  std::string features;
  for (const std::string& name : model_features_) features += name + "\n";
  return WriteFileAtomic(path + ".features", features);
}

Result<Dataset> ChurnPipeline::BuildMonthDataset(int feature_month,
                                                 int label_month) {
  TELCO_ASSIGN_OR_RETURN(const WideTable wide,
                         BuildWideCheckpointed(feature_month));
  TELCO_ASSIGN_OR_RETURN(const auto labels,
                         LoadLabelsCheckpointed(label_month));
  const std::vector<std::string> feature_cols =
      wide.ColumnsForFamilies(options_.families);
  TELCO_ASSIGN_OR_RETURN(
      Dataset all, Dataset::FromTableUnlabeled(*wide.table, feature_cols));
  TELCO_ASSIGN_OR_RETURN(const Column* imsi_col,
                         wide.table->GetColumn("imsi"));

  // Keep only customers with a known label in the label month (for the
  // early-signal settings some customers churn in between and drop out).
  Dataset out{std::vector<std::string>(feature_cols)};
  for (size_t r = 0; r < all.num_rows(); ++r) {
    const auto it = labels.find(imsi_col->GetInt64(r));
    if (it == labels.end()) continue;
    out.AddRow(all.Row(r), it->second);
  }
  if (out.num_rows() == 0) {
    return Status::Internal("no labelled rows for feature month " +
                            std::to_string(feature_month));
  }
  return out;
}

Result<ChurnPrediction> ChurnPipeline::TrainAndPredict(int predict_month) {
  const int gap = options_.early_months;
  const int last_train_label = predict_month - 1;
  const int first_train_label = last_train_label - options_.training_months + 1;
  if (first_train_label - gap < 1) {
    return Status::InvalidArgument(StrFormat(
        "predict month %d needs label months %d..%d with feature gap %d; "
        "not enough history",
        predict_month, first_train_label, last_train_label, gap));
  }

  static const Counter runs =
      MetricsRegistry::Global().GetCounter("churn.pipeline.runs");
  static const Counter rows_scored =
      MetricsRegistry::Global().GetCounter("churn.pipeline.rows_scored");
  TraceSpan run_span(StrFormat("pipeline.train_and_predict:m%d",
                               predict_month));
  runs.Add();

  timings_.Clear();
  PipelineCheckpoint* cp = options_.checkpoint;

  // A finished run replays from its final checkpoint without touching the
  // warehouse: the ranked prediction round-trips bit-identically.
  if (cp != nullptr && cp->HasStage("prediction")) {
    Result<std::string> text = cp->LoadText("prediction");
    if (text.ok()) {
      Result<ChurnPrediction> replay =
          PredictionFromCsv(std::move(text).ValueOrDie());
      if (replay.ok()) {
        RecordStageReplayed();
        rows_scored.Add(replay->imsis.size());
        return replay;
      }
      text = replay.status();
    }
    TELCO_LOG(Warning) << "prediction checkpoint unusable ("
                       << text.status().ToString() << "); recomputing";
  }

  // Train, unless a checkpointed model lets us skip the training window
  // (and therefore its wide tables) entirely.
  TELCO_ASSIGN_OR_RETURN(const bool restored, TryRestoreModel());
  if (!restored) {
    TELCO_RETURN_NOT_OK(TrainWindow(last_train_label));
    if (cp != nullptr && model_->forest() != nullptr) {
      TELCO_RETURN_NOT_OK(
          cp->SaveForest("model", *model_->forest(), model_features_));
    }
  }

  // Score the prediction month (features observed `gap` months early).
  Dataset test({});
  {
    ScopedStageTimer timer(&timings_, "features_test");
    TELCO_ASSIGN_OR_RETURN(test, BuildMonthDataset(predict_month - gap,
                                                   predict_month));
  }
  if (restored && test.feature_names() != model_features_) {
    return Status::InvalidArgument(
        "checkpointed model was trained on different feature columns than "
        "this run produces; delete the checkpoint or fix the run config");
  }
  TELCO_ASSIGN_OR_RETURN(const WideTable wide,
                         BuildWideCheckpointed(predict_month - gap));
  TELCO_ASSIGN_OR_RETURN(const auto labels,
                         LoadLabelsCheckpointed(predict_month));
  TELCO_ASSIGN_OR_RETURN(const Column* imsi_col,
                         wide.table->GetColumn("imsi"));

  std::vector<double> scores;
  {
    ScopedStageTimer timer(&timings_, "score");
    scores = model_->ScoreAll(test);
  }
  rows_scored.Add(scores.size());

  ChurnPrediction prediction;
  prediction.imsis.reserve(test.num_rows());
  prediction.scores.reserve(test.num_rows());
  prediction.labels.reserve(test.num_rows());
  // test rows were built in wide-table row order, filtered to labelled
  // imsis — rebuild the imsi list with the same filter.
  size_t test_row = 0;
  for (size_t r = 0; r < wide.table->num_rows(); ++r) {
    const int64_t imsi = imsi_col->GetInt64(r);
    const auto it = labels.find(imsi);
    if (it == labels.end()) continue;
    prediction.imsis.push_back(imsi);
    prediction.scores.push_back(scores[test_row]);
    prediction.labels.push_back(it->second);
    ++test_row;
  }
  TELCO_CHECK(test_row == test.num_rows());

  // Rank by descending likelihood (Eq. 4's output ordering).
  std::vector<size_t> order(prediction.imsis.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return prediction.scores[a] > prediction.scores[b];
  });
  ChurnPrediction sorted;
  sorted.imsis.reserve(order.size());
  sorted.scores.reserve(order.size());
  sorted.labels.reserve(order.size());
  for (size_t idx : order) {
    sorted.imsis.push_back(prediction.imsis[idx]);
    sorted.scores.push_back(prediction.scores[idx]);
    sorted.labels.push_back(prediction.labels[idx]);
  }
  if (cp != nullptr) {
    TELCO_RETURN_NOT_OK(cp->SaveText("prediction", PredictionToCsv(sorted)));
  }
  return sorted;
}

Result<RankingMetrics> ChurnPipeline::Evaluate(int predict_month, size_t u) {
  TELCO_ASSIGN_OR_RETURN(const ChurnPrediction prediction,
                         TrainAndPredict(predict_month));
  return EvaluateRanking(prediction.ToScoredInstances(), u);
}

}  // namespace telco
