#include "churn/pipeline.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/string_util.h"
#include "features/churn_labels.h"

namespace telco {

std::vector<ScoredInstance> ChurnPrediction::ToScoredInstances() const {
  std::vector<ScoredInstance> out;
  out.reserve(imsis.size());
  for (size_t i = 0; i < imsis.size(); ++i) {
    out.push_back(ScoredInstance{scores[i], labels[i] == 1});
  }
  return out;
}

ChurnPipeline::ChurnPipeline(Catalog* catalog, PipelineOptions options,
                             WideTableBuilder* shared_builder)
    : catalog_(catalog), options_(std::move(options)) {
  TELCO_CHECK(catalog_ != nullptr);
  if (options_.num_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.num_threads));
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::Default();
  }
  if (options_.wide.pool == nullptr) options_.wide.pool = pool_;
  if (options_.model.pool == nullptr) options_.model.pool = pool_;
  if (shared_builder != nullptr) {
    wide_builder_ = shared_builder;
  } else {
    owned_builder_ =
        std::make_unique<WideTableBuilder>(catalog, options_.wide);
    wide_builder_ = owned_builder_.get();
  }
}

Result<Dataset> ChurnPipeline::BuildMonthDataset(int feature_month,
                                                 int label_month) {
  TELCO_ASSIGN_OR_RETURN(const WideTable wide,
                         wide_builder_->Build(feature_month));
  TELCO_ASSIGN_OR_RETURN(const auto labels,
                         LoadChurnLabels(*catalog_, label_month));
  const std::vector<std::string> feature_cols =
      wide.ColumnsForFamilies(options_.families);
  TELCO_ASSIGN_OR_RETURN(
      Dataset all, Dataset::FromTableUnlabeled(*wide.table, feature_cols));
  TELCO_ASSIGN_OR_RETURN(const Column* imsi_col,
                         wide.table->GetColumn("imsi"));

  // Keep only customers with a known label in the label month (for the
  // early-signal settings some customers churn in between and drop out).
  Dataset out{std::vector<std::string>(feature_cols)};
  for (size_t r = 0; r < all.num_rows(); ++r) {
    const auto it = labels.find(imsi_col->GetInt64(r));
    if (it == labels.end()) continue;
    out.AddRow(all.Row(r), it->second);
  }
  if (out.num_rows() == 0) {
    return Status::Internal("no labelled rows for feature month " +
                            std::to_string(feature_month));
  }
  return out;
}

Result<ChurnPrediction> ChurnPipeline::TrainAndPredict(int predict_month) {
  const int gap = options_.early_months;
  const int last_train_label = predict_month - 1;
  const int first_train_label = last_train_label - options_.training_months + 1;
  if (first_train_label - gap < 1) {
    return Status::InvalidArgument(StrFormat(
        "predict month %d needs label months %d..%d with feature gap %d; "
        "not enough history",
        predict_month, first_train_label, last_train_label, gap));
  }

  timings_.Clear();

  // Accumulate the training window.
  Dataset train({});
  {
    ScopedStageTimer timer(&timings_, "features_train");
    bool first = true;
    for (int label_month = first_train_label; label_month <= last_train_label;
         ++label_month) {
      TELCO_ASSIGN_OR_RETURN(
          Dataset month_data,
          BuildMonthDataset(label_month - gap, label_month));
      if (first) {
        train = std::move(month_data);
        first = false;
      } else {
        TELCO_RETURN_NOT_OK(train.Append(month_data));
      }
    }
  }

  model_ = std::make_unique<ChurnModel>(options_.model);
  {
    ScopedStageTimer timer(&timings_, "train");
    TELCO_RETURN_NOT_OK(model_->Train(train));
  }

  // Score the prediction month (features observed `gap` months early).
  Dataset test({});
  {
    ScopedStageTimer timer(&timings_, "features_test");
    TELCO_ASSIGN_OR_RETURN(test, BuildMonthDataset(predict_month - gap,
                                                   predict_month));
  }
  TELCO_ASSIGN_OR_RETURN(const WideTable wide,
                         wide_builder_->Build(predict_month - gap));
  TELCO_ASSIGN_OR_RETURN(const auto labels,
                         LoadChurnLabels(*catalog_, predict_month));
  TELCO_ASSIGN_OR_RETURN(const Column* imsi_col,
                         wide.table->GetColumn("imsi"));

  std::vector<double> scores;
  {
    ScopedStageTimer timer(&timings_, "score");
    scores = model_->ScoreAll(test);
  }

  ChurnPrediction prediction;
  prediction.imsis.reserve(test.num_rows());
  prediction.scores.reserve(test.num_rows());
  prediction.labels.reserve(test.num_rows());
  // test rows were built in wide-table row order, filtered to labelled
  // imsis — rebuild the imsi list with the same filter.
  size_t test_row = 0;
  for (size_t r = 0; r < wide.table->num_rows(); ++r) {
    const int64_t imsi = imsi_col->GetInt64(r);
    const auto it = labels.find(imsi);
    if (it == labels.end()) continue;
    prediction.imsis.push_back(imsi);
    prediction.scores.push_back(scores[test_row]);
    prediction.labels.push_back(it->second);
    ++test_row;
  }
  TELCO_CHECK(test_row == test.num_rows());

  // Rank by descending likelihood (Eq. 4's output ordering).
  std::vector<size_t> order(prediction.imsis.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return prediction.scores[a] > prediction.scores[b];
  });
  ChurnPrediction sorted;
  sorted.imsis.reserve(order.size());
  sorted.scores.reserve(order.size());
  sorted.labels.reserve(order.size());
  for (size_t idx : order) {
    sorted.imsis.push_back(prediction.imsis[idx]);
    sorted.scores.push_back(prediction.scores[idx]);
    sorted.labels.push_back(prediction.labels[idx]);
  }
  return sorted;
}

Result<RankingMetrics> ChurnPipeline::Evaluate(int predict_month, size_t u) {
  TELCO_ASSIGN_OR_RETURN(const ChurnPrediction prediction,
                         TrainAndPredict(predict_month));
  return EvaluateRanking(prediction.ToScoredInstances(), u);
}

}  // namespace telco
