// Smoothed LDA trained by synchronous belief propagation (paper
// Section 4.1.3; Zeng et al., "Learning Topic Models by Belief
// Propagation", TPAMI 2013).
//
// The trainer maintains a message mu_{w,d}(k) — the posterior topic
// distribution of each non-zero (word, document) cell — and iterates the
// coordinate-descent update
//
//   mu_{w,d}(k) ∝ (theta_hat_d(k) - x_wd mu_wd(k) + alpha)
//              * (phi_hat_w(k) - x_wd mu_wd(k) + beta)
//              / (phi_tot(k)   - x_wd mu_wd(k) + W beta)
//
// where theta_hat / phi_hat are message-weighted counts. This maximises
// the posterior p(theta, phi | x, alpha, beta) of Eq. (2). The outputs are
// the multinomial matrices theta (K x M, the paper's per-customer topic
// features with K = 10) and phi (K x W).

#ifndef TELCO_TEXT_LDA_H_
#define TELCO_TEXT_LDA_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "text/vocabulary.h"

namespace telco {

class ThreadPool;

/// Hyper-parameters of the LDA trainer.
struct LdaOptions {
  /// Number of topics K (the paper fixes K = 10).
  uint32_t num_topics = 10;
  /// Symmetric Dirichlet hyper-parameter for document-topic.
  double alpha = 0.1;
  /// Symmetric Dirichlet hyper-parameter for topic-word.
  double beta = 0.01;
  int max_iterations = 100;
  /// Stop when the mean absolute message change drops below this.
  double tolerance = 1e-4;
  uint64_t seed = 42;
  /// Pool for the embarrassingly-parallel phases (message initialisation
  /// and theta/phi finalisation; null = serial). The BP sweeps themselves
  /// stay serial — their incremental count updates are order-dependent.
  /// Results are bit-identical for any thread count: the init RNG is a
  /// per-chunk stream on a fixed grid, finalisation is elementwise.
  ThreadPool* pool = nullptr;
};

/// \brief A trained LDA model: theta and phi plus fold-in inference.
class LdaModel {
 public:
  /// Trains on `corpus` with the given options.
  static Result<LdaModel> Train(const Corpus& corpus,
                                const LdaOptions& options = {});

  uint32_t num_topics() const { return num_topics_; }
  size_t num_documents() const { return theta_.size() / num_topics_; }
  size_t vocab_size() const { return phi_.size() / num_topics_; }
  int iterations() const { return iterations_; }
  bool converged() const { return converged_; }

  /// Document-topic distribution theta_d (length K, sums to 1).
  std::vector<double> DocumentTopics(size_t doc) const;

  /// Topic-word distribution phi_k (length W, sums to 1).
  std::vector<double> TopicWords(uint32_t topic) const;

  /// Folds in an unseen document against the trained phi, returning its
  /// topic distribution. Empty documents return the uniform distribution.
  std::vector<double> InferDocument(const Document& doc,
                                    int fold_in_iterations = 20) const;

  /// Perplexity of the corpus under the trained model (lower is better).
  /// Documents are independent; `pool` chunks them across workers with a
  /// document-count-keyed grid, so the value is identical for any thread
  /// count (per-chunk partial log-likelihoods combine in chunk order).
  double Perplexity(const Corpus& corpus, ThreadPool* pool = nullptr) const;

 private:
  LdaModel() = default;

  double Phi(uint32_t topic, uint32_t word) const {
    return phi_[static_cast<size_t>(word) * num_topics_ + topic];
  }

  uint32_t num_topics_ = 0;
  double alpha_ = 0.1;
  // theta_: doc-major M x K; phi_: word-major W x K (both normalised).
  std::vector<double> theta_;
  std::vector<double> phi_;
  int iterations_ = 0;
  bool converged_ = false;
};

}  // namespace telco

#endif  // TELCO_TEXT_LDA_H_
