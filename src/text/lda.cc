#include "text/lda.h"

#include <cmath>

#include "common/logging.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"

namespace telco {

namespace {

// Non-zeros (or documents) per parallel chunk. Fixed so RNG substreams
// and reduction order do not depend on the thread count.
constexpr size_t kLdaGrain = 8192;

// Flattened view of the corpus non-zeros for cache-friendly sweeps.
struct Nonzeros {
  std::vector<uint32_t> doc;
  std::vector<uint32_t> word;
  std::vector<double> count;

  explicit Nonzeros(const Corpus& corpus) {
    size_t total = 0;
    for (size_t d = 0; d < corpus.num_documents(); ++d) {
      total += corpus.document(d).word_counts.size();
    }
    doc.reserve(total);
    word.reserve(total);
    count.reserve(total);
    for (size_t d = 0; d < corpus.num_documents(); ++d) {
      for (const auto& [w, c] : corpus.document(d).word_counts) {
        doc.push_back(static_cast<uint32_t>(d));
        word.push_back(w);
        count.push_back(static_cast<double>(c));
      }
    }
  }

  size_t size() const { return doc.size(); }
};

}  // namespace

Result<LdaModel> LdaModel::Train(const Corpus& corpus,
                                 const LdaOptions& options) {
  if (options.num_topics < 2) {
    return Status::InvalidArgument("LDA needs at least 2 topics");
  }
  if (corpus.num_documents() == 0) {
    return Status::InvalidArgument("LDA over an empty corpus");
  }
  if (corpus.vocab_size() == 0) {
    return Status::InvalidArgument("LDA over an empty vocabulary");
  }
  static const Counter trainings =
      MetricsRegistry::Global().GetCounter("text.lda.trainings");
  static const Counter epochs =
      MetricsRegistry::Global().GetCounter("text.lda.epochs");
  static const Counter tokens_seen =
      MetricsRegistry::Global().GetCounter("text.lda.nonzeros");
  static const Histogram epoch_seconds =
      MetricsRegistry::Global().GetHistogram("text.lda.epoch_seconds");
  static const Gauge final_mean_change =
      MetricsRegistry::Global().GetGauge("text.lda.final_mean_change");
  TraceSpan span("text.lda.train");
  trainings.Add();
  const uint32_t K = options.num_topics;
  const size_t M = corpus.num_documents();
  const size_t W = corpus.vocab_size();
  const Nonzeros nz(corpus);
  tokens_seen.Add(nz.size());

  // Messages mu: one K-vector per non-zero, randomly initialised from
  // per-chunk RNG streams keyed by HashCombine64(seed, chunk) — the same
  // stream grid whether run serially or across the pool.
  std::vector<double> mu(nz.size() * K);
  const size_t init_chunks = (nz.size() + kLdaGrain - 1) / kLdaGrain;
  RunParallelChunks(
      options.pool, 0, nz.size(), init_chunks,
      [&](size_t chunk, size_t lo, size_t hi) {
        Rng rng(HashCombine64(options.seed, chunk));
        for (size_t i = lo; i < hi; ++i) {
          double total = 0.0;
          for (uint32_t k = 0; k < K; ++k) {
            const double v = 0.5 + rng.Uniform();
            mu[i * K + k] = v;
            total += v;
          }
          for (uint32_t k = 0; k < K; ++k) mu[i * K + k] /= total;
        }
      });

  // Message-weighted counts.
  std::vector<double> theta_hat(M * K, 0.0);  // doc-topic
  std::vector<double> phi_hat(W * K, 0.0);    // word-topic
  std::vector<double> phi_tot(K, 0.0);        // per-topic token mass
  auto accumulate = [&] {
    std::fill(theta_hat.begin(), theta_hat.end(), 0.0);
    std::fill(phi_hat.begin(), phi_hat.end(), 0.0);
    std::fill(phi_tot.begin(), phi_tot.end(), 0.0);
    for (size_t i = 0; i < nz.size(); ++i) {
      const double x = nz.count[i];
      const double* m = &mu[i * K];
      double* th = &theta_hat[static_cast<size_t>(nz.doc[i]) * K];
      double* ph = &phi_hat[static_cast<size_t>(nz.word[i]) * K];
      for (uint32_t k = 0; k < K; ++k) {
        const double v = x * m[k];
        th[k] += v;
        ph[k] += v;
        phi_tot[k] += v;
      }
    }
  };
  accumulate();

  const double wb = static_cast<double>(W) * options.beta;
  LdaModel model;
  model.num_topics_ = K;
  model.alpha_ = options.alpha;

  std::vector<double> fresh(K);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    Stopwatch epoch_watch;
    double total_change = 0.0;
    for (size_t i = 0; i < nz.size(); ++i) {
      const double x = nz.count[i];
      double* m = &mu[i * K];
      double* th = &theta_hat[static_cast<size_t>(nz.doc[i]) * K];
      double* ph = &phi_hat[static_cast<size_t>(nz.word[i]) * K];
      double norm = 0.0;
      for (uint32_t k = 0; k < K; ++k) {
        // Exclude this cell's own mass (the "cavity" of BP).
        const double self = x * m[k];
        const double t = th[k] - self + options.alpha;
        const double p = ph[k] - self + options.beta;
        const double z = phi_tot[k] - self + wb;
        const double v = (t > 0.0 && p > 0.0 && z > 0.0) ? t * p / z : 1e-12;
        fresh[k] = v;
        norm += v;
      }
      for (uint32_t k = 0; k < K; ++k) {
        const double updated = fresh[k] / norm;
        const double delta = updated - m[k];
        total_change += std::fabs(delta);
        // Incremental count update keeps the sweep O(nnz * K).
        const double dm = x * delta;
        th[k] += dm;
        ph[k] += dm;
        phi_tot[k] += dm;
        m[k] = updated;
      }
    }
    ++model.iterations_;
    epoch_seconds.Observe(epoch_watch.ElapsedSeconds());
    epochs.Add();
    const double mean_change =
        total_change / (static_cast<double>(nz.size()) * K + 1e-12);
    // A cheap per-epoch convergence proxy; true perplexity is O(corpus)
    // and is recorded separately when Perplexity() runs (DESIGN.md §8).
    final_mean_change.Set(mean_change);
    if (mean_change < options.tolerance) {
      model.converged_ = true;
      break;
    }
  }

  // Final normalised parameter estimates (elementwise per document/word,
  // so parallel results match serial bit-for-bit).
  model.theta_.assign(M * K, 0.0);
  RunParallelFor(options.pool, 0, M, [&](size_t d) {
    double total = 0.0;
    for (uint32_t k = 0; k < K; ++k) {
      total += theta_hat[d * K + k] + options.alpha;
    }
    for (uint32_t k = 0; k < K; ++k) {
      model.theta_[d * K + k] = (theta_hat[d * K + k] + options.alpha) / total;
    }
  });
  model.phi_.assign(W * K, 0.0);
  std::vector<double> topic_norm(K, 0.0);
  for (uint32_t k = 0; k < K; ++k) topic_norm[k] = phi_tot[k] + wb;
  RunParallelFor(options.pool, 0, W, [&](size_t w) {
    for (uint32_t k = 0; k < K; ++k) {
      model.phi_[w * K + k] =
          (phi_hat[w * K + k] + options.beta) / topic_norm[k];
    }
  });
  return model;
}

std::vector<double> LdaModel::DocumentTopics(size_t doc) const {
  TELCO_CHECK(doc < num_documents());
  return std::vector<double>(theta_.begin() + doc * num_topics_,
                             theta_.begin() + (doc + 1) * num_topics_);
}

std::vector<double> LdaModel::TopicWords(uint32_t topic) const {
  TELCO_CHECK(topic < num_topics_);
  const size_t W = vocab_size();
  std::vector<double> out(W);
  double total = 0.0;
  for (size_t w = 0; w < W; ++w) total += Phi(topic, static_cast<uint32_t>(w));
  for (size_t w = 0; w < W; ++w) {
    out[w] = Phi(topic, static_cast<uint32_t>(w)) / (total > 0 ? total : 1.0);
  }
  return out;
}

std::vector<double> LdaModel::InferDocument(const Document& doc,
                                            int fold_in_iterations) const {
  const uint32_t K = num_topics_;
  std::vector<double> theta(K, 1.0 / K);
  if (doc.word_counts.empty()) return theta;
  std::vector<double> counts(K, 0.0);
  for (int iter = 0; iter < fold_in_iterations; ++iter) {
    std::fill(counts.begin(), counts.end(), 0.0);
    for (const auto& [w, c] : doc.word_counts) {
      if (w >= vocab_size()) continue;
      double norm = 0.0;
      std::vector<double> post(K);
      for (uint32_t k = 0; k < K; ++k) {
        post[k] = theta[k] * Phi(k, w);
        norm += post[k];
      }
      if (norm <= 0.0) continue;
      for (uint32_t k = 0; k < K; ++k) {
        counts[k] += c * post[k] / norm;
      }
    }
    double total = 0.0;
    for (uint32_t k = 0; k < K; ++k) total += counts[k] + alpha_;
    for (uint32_t k = 0; k < K; ++k) theta[k] = (counts[k] + alpha_) / total;
  }
  return theta;
}

double LdaModel::Perplexity(const Corpus& corpus, ThreadPool* pool) const {
  static const Gauge perplexity_gauge =
      MetricsRegistry::Global().GetGauge("text.lda.perplexity");
  static const Histogram perplexity_seconds =
      MetricsRegistry::Global().GetHistogram("text.lda.perplexity_seconds");
  TraceSpan span("text.lda.perplexity");
  Stopwatch watch;
  const uint32_t K = num_topics_;
  const size_t docs = corpus.num_documents();
  const size_t grain = 256;  // documents per chunk; fixed grid
  const size_t num_chunks = (docs + grain - 1) / grain;
  std::vector<double> chunk_log_lik(num_chunks, 0.0);
  std::vector<uint64_t> chunk_tokens(num_chunks, 0);
  RunParallelChunks(
      pool, 0, docs, num_chunks, [&](size_t chunk, size_t lo, size_t hi) {
        double log_lik = 0.0;
        uint64_t tokens = 0;
        for (size_t d = lo; d < hi; ++d) {
          const std::vector<double> theta =
              d < num_documents() ? DocumentTopics(d)
                                  : InferDocument(corpus.document(d));
          for (const auto& [w, c] : corpus.document(d).word_counts) {
            if (w >= vocab_size()) continue;
            double p = 0.0;
            for (uint32_t k = 0; k < K; ++k) p += theta[k] * Phi(k, w);
            log_lik += c * std::log(std::max(p, 1e-300));
            tokens += c;
          }
        }
        chunk_log_lik[chunk] = log_lik;
        chunk_tokens[chunk] = tokens;
      });
  double log_lik = 0.0;
  uint64_t tokens = 0;
  for (size_t ch = 0; ch < num_chunks; ++ch) {
    log_lik += chunk_log_lik[ch];
    tokens += chunk_tokens[ch];
  }
  perplexity_seconds.Observe(watch.ElapsedSeconds());
  if (tokens == 0) return 0.0;
  const double perplexity = std::exp(-log_lik / static_cast<double>(tokens));
  perplexity_gauge.Set(perplexity);
  return perplexity;
}

}  // namespace telco
