// Vocabulary and bag-of-words corpus for the topic-feature pipeline.
//
// The paper forms per-customer documents from complaint / search text,
// removes low-frequency words (keeping 2408 complaint and 15974 search
// vocabulary words at operator scale) and feeds the sparse counts to LDA.

#ifndef TELCO_TEXT_VOCABULARY_H_
#define TELCO_TEXT_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace telco {

/// \brief Bidirectional word <-> id mapping with frequency pruning.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Adds an occurrence of `word`, creating an id on first sight.
  uint32_t AddOccurrence(const std::string& word);

  /// Id of a word, if present.
  std::optional<uint32_t> IdOf(const std::string& word) const;

  /// The word with the given id. Precondition: id < size().
  const std::string& WordOf(uint32_t id) const { return words_[id]; }

  /// Total occurrences recorded for the given id.
  uint64_t CountOf(uint32_t id) const { return counts_[id]; }

  size_t size() const { return words_.size(); }

  /// A new vocabulary containing only words with >= min_count occurrences
  /// ("after removing less frequent words"), with dense re-assigned ids.
  Vocabulary Pruned(uint64_t min_count) const;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> words_;
  std::vector<uint64_t> counts_;
};

/// \brief One document: sparse (word id, count) pairs.
struct Document {
  std::vector<std::pair<uint32_t, uint32_t>> word_counts;

  /// Sum of counts.
  uint64_t TotalTokens() const {
    uint64_t total = 0;
    for (const auto& [w, c] : word_counts) total += c;
    return total;
  }
};

/// \brief A corpus of documents sharing one vocabulary.
class Corpus {
 public:
  explicit Corpus(size_t vocab_size) : vocab_size_(vocab_size) {}

  /// Appends a document; word ids must be < vocab_size. Zero counts are
  /// dropped; duplicate ids within a document are merged.
  Status AddDocument(Document doc);

  /// Tokenised convenience: counts the words of `tokens` that exist in
  /// `vocab` and appends the resulting document (possibly empty).
  Status AddTokens(const Vocabulary& vocab,
                   const std::vector<std::string>& tokens);

  size_t num_documents() const { return documents_.size(); }
  size_t vocab_size() const { return vocab_size_; }
  const Document& document(size_t i) const { return documents_[i]; }

  /// Total token count across the corpus.
  uint64_t TotalTokens() const;

 private:
  size_t vocab_size_;
  std::vector<Document> documents_;
};

/// \brief Whitespace tokeniser with ASCII lower-casing (the repo's text
/// sources are synthetic and already clean).
std::vector<std::string> Tokenize(const std::string& text);

}  // namespace telco

#endif  // TELCO_TEXT_VOCABULARY_H_
