#include "text/vocabulary.h"

#include <algorithm>
#include <map>

#include "common/string_util.h"

namespace telco {

uint32_t Vocabulary::AddOccurrence(const std::string& word) {
  const auto [it, inserted] =
      ids_.emplace(word, static_cast<uint32_t>(words_.size()));
  if (inserted) {
    words_.push_back(word);
    counts_.push_back(0);
  }
  ++counts_[it->second];
  return it->second;
}

std::optional<uint32_t> Vocabulary::IdOf(const std::string& word) const {
  const auto it = ids_.find(word);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

Vocabulary Vocabulary::Pruned(uint64_t min_count) const {
  Vocabulary out;
  for (size_t i = 0; i < words_.size(); ++i) {
    if (counts_[i] < min_count) continue;
    const uint32_t id =
        out.ids_.emplace(words_[i], static_cast<uint32_t>(out.words_.size()))
            .first->second;
    (void)id;
    out.words_.push_back(words_[i]);
    out.counts_.push_back(counts_[i]);
  }
  return out;
}

Status Corpus::AddDocument(Document doc) {
  std::map<uint32_t, uint32_t> merged;
  for (const auto& [w, c] : doc.word_counts) {
    if (w >= vocab_size_) {
      return Status::OutOfRange(StrFormat(
          "word id %u out of range for vocabulary of %zu", w, vocab_size_));
    }
    if (c == 0) continue;
    merged[w] += c;
  }
  Document clean;
  clean.word_counts.assign(merged.begin(), merged.end());
  documents_.push_back(std::move(clean));
  return Status::OK();
}

Status Corpus::AddTokens(const Vocabulary& vocab,
                         const std::vector<std::string>& tokens) {
  std::map<uint32_t, uint32_t> merged;
  for (const auto& tok : tokens) {
    const auto id = vocab.IdOf(tok);
    if (id) ++merged[*id];
  }
  Document doc;
  doc.word_counts.assign(merged.begin(), merged.end());
  return AddDocument(std::move(doc));
}

uint64_t Corpus::TotalTokens() const {
  uint64_t total = 0;
  for (const auto& d : documents_) total += d.TotalTokens();
  return total;
}

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        out.push_back(ToLower(cur));
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(ToLower(cur));
  return out;
}

}  // namespace telco
