#include "features/feature_families.h"

namespace telco {

const char* FeatureFamilyLabel(FeatureFamily family) {
  switch (family) {
    case FeatureFamily::kF1Baseline:
      return "F1";
    case FeatureFamily::kF2Cs:
      return "F2";
    case FeatureFamily::kF3Ps:
      return "F3";
    case FeatureFamily::kF4CallGraph:
      return "F4";
    case FeatureFamily::kF5MsgGraph:
      return "F5";
    case FeatureFamily::kF6CoocGraph:
      return "F6";
    case FeatureFamily::kF7ComplaintTopics:
      return "F7";
    case FeatureFamily::kF8SearchTopics:
      return "F8";
    case FeatureFamily::kF9SecondOrder:
      return "F9";
  }
  return "?";
}

const char* FeatureFamilyDescription(FeatureFamily family) {
  switch (family) {
    case FeatureFamily::kF1Baseline:
      return "baseline BSS features";
    case FeatureFamily::kF2Cs:
      return "CS KPI/KQI features";
    case FeatureFamily::kF3Ps:
      return "PS KPI/KQI + location features";
    case FeatureFamily::kF4CallGraph:
      return "call graph features";
    case FeatureFamily::kF5MsgGraph:
      return "message graph features";
    case FeatureFamily::kF6CoocGraph:
      return "co-occurrence graph features";
    case FeatureFamily::kF7ComplaintTopics:
      return "topic features (complaints)";
    case FeatureFamily::kF8SearchTopics:
      return "topic features (search queries)";
    case FeatureFamily::kF9SecondOrder:
      return "second-order features";
  }
  return "?";
}

std::vector<FeatureFamily> AllFeatureFamilies() {
  return {FeatureFamily::kF1Baseline,       FeatureFamily::kF2Cs,
          FeatureFamily::kF3Ps,             FeatureFamily::kF4CallGraph,
          FeatureFamily::kF5MsgGraph,       FeatureFamily::kF6CoocGraph,
          FeatureFamily::kF7ComplaintTopics, FeatureFamily::kF8SearchTopics,
          FeatureFamily::kF9SecondOrder};
}

}  // namespace telco
