#include "features/churn_labels.h"

#include "datagen/table_names.h"

namespace telco {

Result<std::unordered_map<int64_t, int>> LoadChurnLabels(
    const Catalog& catalog, int month) {
  TELCO_ASSIGN_OR_RETURN(const TablePtr recharge,
                         catalog.Get(RechargeTableName(month)));
  TELCO_ASSIGN_OR_RETURN(const Column* col_imsi,
                         recharge->GetColumn("imsi"));
  TELCO_ASSIGN_OR_RETURN(const Column* col_day,
                         recharge->GetColumn("recharge_day"));
  std::unordered_map<int64_t, int> labels;
  labels.reserve(recharge->num_rows() * 2);
  for (size_t r = 0; r < recharge->num_rows(); ++r) {
    if (col_imsi->IsNull(r)) continue;
    const int64_t day = col_day->IsNull(r) ? 0 : col_day->GetInt64(r);
    const bool churner = day == 0 || day > kChurnRechargeDeadlineDays;
    labels[col_imsi->GetInt64(r)] = churner ? 1 : 0;
  }
  return labels;
}

}  // namespace telco
