// Graph feature extraction (paper Section 4.1.2): weighted PageRank and
// churn-label propagation over the monthly customer graphs.
//
// PageRank runs on the *current* month's graph (social importance now).
// Label propagation runs on the *previous* month's graph — the one that
// still contains last month's churners, the seed vertices "we have churner
// label information about" — and the propagated churn probability is read
// off for the customers still active this month. An equal-sized random
// sample of known non-churners is seeded as the negative class so the
// propagation has a proper two-class fixed point.

#ifndef TELCO_FEATURES_GRAPH_FEATURES_H_
#define TELCO_FEATURES_GRAPH_FEATURES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "storage/table.h"

namespace telco {

class ThreadPool;

/// \brief A customer graph built from an (imsi_a, imsi_b, weight) edge
/// table, restricted to a given universe of customers.
struct CustomerGraph {
  Graph graph;
  /// Dense vertex id per imsi (vertices = the universe, in input order).
  std::unordered_map<int64_t, uint32_t> vertex_of;
  std::vector<int64_t> imsi_of;
};

/// \brief Builds the customer graph over `universe`; edges touching imsis
/// outside the universe are dropped, parallel edges accumulate weight.
Result<CustomerGraph> BuildCustomerGraph(const Table& edges,
                                         const std::vector<int64_t>& universe);

/// Inputs of ComputeGraphFeatures for one graph family (call/msg/cooc).
struct GraphFeatureInputs {
  /// This month's edge table (PageRank source).
  const Table* current_edges = nullptr;
  /// Customers to produce feature rows for (this month's active set).
  const std::vector<int64_t>* current_universe = nullptr;
  /// Previous month's edge table (label-propagation source); null for the
  /// first month — LP features then default to the 0.5 prior.
  const Table* previous_edges = nullptr;
  /// Previous month's active set (the LP graph universe).
  const std::vector<int64_t>* previous_universe = nullptr;
  /// Known labels of the previous month (imsi -> 0/1).
  const std::unordered_map<int64_t, int>* previous_labels = nullptr;
  /// Deterministic seed for the negative-class subsample.
  uint64_t seed = 99;
  /// Pool for the PageRank / label-propagation sweeps (null = serial).
  ThreadPool* pool = nullptr;
};

/// \brief Computes (imsi, <prefix>_pagerank, <prefix>_lp_churn) for every
/// customer in the current universe. PageRank values are scaled by N so
/// they are O(1); customers absent from the LP graph get 0.5.
Result<TablePtr> ComputeGraphFeatures(const GraphFeatureInputs& inputs,
                                      const std::string& prefix);

}  // namespace telco

#endif  // TELCO_FEATURES_GRAPH_FEATURES_H_
