// Topic feature extraction (paper Section 4.1.3): LDA by belief
// propagation over the per-customer bag-of-words documents, K = 10 topic
// proportions per customer per text source.

#ifndef TELCO_FEATURES_TOPIC_FEATURES_H_
#define TELCO_FEATURES_TOPIC_FEATURES_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "text/lda.h"

namespace telco {

/// \brief Gathers the per-customer sparse documents of a text table.
/// Word ids outside [0, vocab_size) and non-positive counts are dropped.
Result<std::unordered_map<int64_t, Document>> GatherDocuments(
    const Table& text_table, size_t vocab_size);

/// \brief Trains an LDA model on the non-empty documents of a text table
/// (unsupervised; no label leakage).
Result<LdaModel> TrainLdaOnTable(const Table& text_table, size_t vocab_size,
                                 const LdaOptions& options);

/// \brief Computes (imsi, <prefix>_topic0 .. <prefix>_topic{K-1}) for the
/// universe by folding each customer's document into a *fixed* trained
/// model — the same phi across months, so topic k means the same thing in
/// every month's wide table. Customers with no text get the uniform
/// distribution. Per-customer inference is independent and chunks across
/// `pool` (null = serial) with bit-identical results.
Result<TablePtr> ComputeTopicFeatures(const LdaModel& model,
                                      const Table& text_table,
                                      const std::vector<int64_t>& universe,
                                      size_t vocab_size,
                                      const std::string& prefix,
                                      ThreadPool* pool = nullptr);

}  // namespace telco

#endif  // TELCO_FEATURES_TOPIC_FEATURES_H_
