#include "features/graph_features.h"

#include "common/logging.h"
#include "common/rng.h"
#include "graph/label_propagation.h"
#include "graph/pagerank.h"

namespace telco {

Result<CustomerGraph> BuildCustomerGraph(
    const Table& edges, const std::vector<int64_t>& universe) {
  if (universe.empty()) {
    return Status::InvalidArgument("empty customer universe");
  }
  CustomerGraph out;
  out.imsi_of = universe;
  out.vertex_of.reserve(universe.size() * 2);
  for (size_t i = 0; i < universe.size(); ++i) {
    out.vertex_of.emplace(universe[i], static_cast<uint32_t>(i));
  }

  TELCO_ASSIGN_OR_RETURN(const Column* col_a, edges.GetColumn("imsi_a"));
  TELCO_ASSIGN_OR_RETURN(const Column* col_b, edges.GetColumn("imsi_b"));
  TELCO_ASSIGN_OR_RETURN(const Column* col_w, edges.GetColumn("weight"));

  GraphBuilder builder(universe.size());
  for (size_t r = 0; r < edges.num_rows(); ++r) {
    if (col_a->IsNull(r) || col_b->IsNull(r) || col_w->IsNull(r)) continue;
    const auto it_a = out.vertex_of.find(col_a->GetInt64(r));
    const auto it_b = out.vertex_of.find(col_b->GetInt64(r));
    if (it_a == out.vertex_of.end() || it_b == out.vertex_of.end()) continue;
    if (it_a->second == it_b->second) continue;
    const double w = col_w->GetNumeric(r);
    if (w <= 0.0) continue;
    TELCO_RETURN_NOT_OK(builder.AddEdge(it_a->second, it_b->second, w));
  }
  out.graph = std::move(builder).Build();
  return out;
}

namespace {

// Runs label propagation on the previous month's graph and returns each
// imsi's propagated churn probability.
Result<std::unordered_map<int64_t, double>> PropagateChurn(
    const Table& previous_edges, const std::vector<int64_t>& prev_universe,
    const std::unordered_map<int64_t, int>& previous_labels, uint64_t seed,
    ThreadPool* pool) {
  TELCO_ASSIGN_OR_RETURN(const CustomerGraph graph,
                         BuildCustomerGraph(previous_edges, prev_universe));
  // Positive seeds: every known churner. Negative seeds: an equal-sized
  // random subsample of known non-churners (seeding all of them would
  // clamp nearly the whole graph and destroy the diffusion signal).
  std::vector<uint32_t> churners;
  std::vector<uint32_t> non_churners;
  for (size_t v = 0; v < graph.imsi_of.size(); ++v) {
    const auto it = previous_labels.find(graph.imsi_of[v]);
    if (it == previous_labels.end()) continue;
    (it->second == 1 ? churners : non_churners)
        .push_back(static_cast<uint32_t>(v));
  }
  std::unordered_map<int64_t, double> out;
  if (churners.empty() || non_churners.empty()) return out;
  Rng rng(seed);
  rng.Shuffle(non_churners);
  non_churners.resize(std::min(non_churners.size(), churners.size()));

  std::vector<LabeledVertex> seeds;
  seeds.reserve(churners.size() + non_churners.size());
  for (uint32_t v : churners) seeds.push_back(LabeledVertex{v, 1});
  for (uint32_t v : non_churners) seeds.push_back(LabeledVertex{v, 0});

  LabelPropagationOptions options;
  options.num_classes = 2;
  options.max_iterations = 30;
  options.pool = pool;
  TELCO_ASSIGN_OR_RETURN(const LabelPropagationResult lp,
                         PropagateLabels(graph.graph, seeds, options));
  out.reserve(graph.imsi_of.size() * 2);
  for (size_t v = 0; v < graph.imsi_of.size(); ++v) {
    out.emplace(graph.imsi_of[v],
                lp.Probability(static_cast<uint32_t>(v), 1));
  }
  return out;
}

}  // namespace

Result<TablePtr> ComputeGraphFeatures(const GraphFeatureInputs& inputs,
                                      const std::string& prefix) {
  if (inputs.current_edges == nullptr || inputs.current_universe == nullptr) {
    return Status::InvalidArgument("missing current-month graph inputs");
  }
  TELCO_ASSIGN_OR_RETURN(
      const CustomerGraph graph,
      BuildCustomerGraph(*inputs.current_edges, *inputs.current_universe));
  const size_t n = graph.imsi_of.size();

  PageRankOptions pr_options;  // d = 0.85, x_m init 1 (paper Eq. 1)
  pr_options.pool = inputs.pool;
  TELCO_ASSIGN_OR_RETURN(const PageRankResult pr,
                         PageRank(graph.graph, pr_options));

  std::unordered_map<int64_t, double> lp_churn;
  if (inputs.previous_edges != nullptr &&
      inputs.previous_universe != nullptr &&
      inputs.previous_labels != nullptr &&
      inputs.previous_edges->num_rows() > 0) {
    TELCO_ASSIGN_OR_RETURN(
        lp_churn,
        PropagateChurn(*inputs.previous_edges, *inputs.previous_universe,
                       *inputs.previous_labels, inputs.seed, inputs.pool));
  }

  TableBuilder builder(Schema({{"imsi", DataType::kInt64},
                               {prefix + "_pagerank", DataType::kDouble},
                               {prefix + "_lp_churn", DataType::kDouble}}));
  builder.Reserve(n);
  std::vector<Value> row(3);
  for (size_t v = 0; v < n; ++v) {
    const auto it = lp_churn.find(graph.imsi_of[v]);
    row[0] = Value(graph.imsi_of[v]);
    // Scale PageRank by N so values are O(1) regardless of universe size.
    row[1] = Value(pr.scores[v] * static_cast<double>(n));
    row[2] = Value(it == lp_churn.end() ? 0.5 : it->second);
    builder.AppendRowUnchecked(row);
  }
  return builder.Finish();
}

}  // namespace telco
