// The paper's labelling rule (Section 5): "If a prepaid customer in the
// recharge period does not recharge within 15 days, this customer is
// considered to be a churner."

#ifndef TELCO_FEATURES_CHURN_LABELS_H_
#define TELCO_FEATURES_CHURN_LABELS_H_

#include <unordered_map>

#include "common/result.h"
#include "storage/catalog.h"

namespace telco {

inline constexpr int kChurnRechargeDeadlineDays = 15;

/// \brief Applies the 15-day rule to a month's recharge table:
/// churner (1) iff the customer never recharged (day 0) or recharged
/// after day 15. Returns imsi -> {0, 1}.
Result<std::unordered_map<int64_t, int>> LoadChurnLabels(
    const Catalog& catalog, int month);

}  // namespace telco

#endif  // TELCO_FEATURES_CHURN_LABELS_H_
