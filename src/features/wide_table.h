// WideTableBuilder: materialises the paper's "unified wide table, where
// each tuple represents a customer's feature vector" (Section 4.1) from
// the raw warehouse tables, one month at a time.
//
// The builder runs the same job shapes the paper describes in Hive/Spark
// SQL — weekly-to-monthly aggregations, multi-table equi-joins, pivots —
// through src/query, then attaches the learned features: PageRank/label
// propagation (F4-F6), LDA topics (F7-F8) and FM-selected second-order
// products (F9). Results are cached in the catalog ("the intermediate
// results are stored as Hive tables, which can be reused by other tasks").

#ifndef TELCO_FEATURES_WIDE_TABLE_H_
#define TELCO_FEATURES_WIDE_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "features/feature_families.h"
#include "ml/fm.h"
#include "storage/catalog.h"
#include "text/lda.h"

namespace telco {

class ThreadPool;

/// Options of the wide-table build.
struct WideTableOptions {
  /// LDA settings for F7/F8 (paper: K = 10).
  LdaOptions lda;
  /// Number of FM-selected second-order features (paper: 20).
  size_t num_second_order = 20;
  /// Labeled month used to fit the F9 pair selector (its labels are known
  /// before any later month is predicted, so there is no leakage).
  int pair_selection_month = 1;
  /// FM selector hyper-parameters.
  FactorizationMachineOptions fm;
  /// Velocity experiments: drop this many trailing weeks from the weekly
  /// sources and substitute the previous month's trailing weeks, emulating
  /// features computed from a window that ends `staleness_weeks` early.
  int staleness_weeks = 0;
  uint64_t seed = 123;
  /// Cache finished wide tables in the catalog under "wide_m<N>[_sK]".
  bool cache_in_catalog = true;
  /// Pool for the per-family fan-out and the per-customer stages inside
  /// each family (null = the process-wide default pool). Families F2..F8
  /// are built concurrently after F1 fixes the universe, then joined in
  /// the fixed F2..F9 order — results are bit-identical to a serial
  /// build for any thread count.
  ThreadPool* pool = nullptr;

  WideTableOptions() {
    lda.num_topics = 10;
    fm.epochs = 15;
    fm.latent_dim = 8;
  }
};

/// \brief A built wide table plus its family -> column-names index.
struct WideTable {
  TablePtr table;
  std::map<FeatureFamily, std::vector<std::string>> columns;

  /// Feature columns of one family.
  const std::vector<std::string>& FamilyColumns(FeatureFamily f) const;
  /// Concatenated feature columns of the given families, in order.
  std::vector<std::string> ColumnsForFamilies(
      const std::vector<FeatureFamily>& families) const;
  /// All 150-ish feature columns (F1..F9).
  std::vector<std::string> AllFeatureColumns() const;
};

/// \brief Builds (and caches) monthly wide tables from a catalog.
class WideTableBuilder {
 public:
  WideTableBuilder(Catalog* catalog, WideTableOptions options = {});

  /// Builds the full wide table of `month` (all families F1..F9).
  /// Results are memoised per month.
  Result<WideTable> Build(int month);

  /// Seeds the memo for `month` with an externally materialised wide
  /// table (e.g. restored from a pipeline checkpoint), registering it in
  /// the catalog exactly as Build would. Subsequent Build(month) calls
  /// return it without recomputing.
  void InjectCached(int month, WideTable wide);

  /// The (name_i, name_j) second-order pairs selected by the FM (fitted
  /// lazily on the pair-selection month). Exposed for diagnostics.
  Result<std::vector<std::pair<std::string, std::string>>>
  SelectedSecondOrderPairs();

 private:
  Result<TablePtr> BuildWeeklyWindow(const std::string& base_name, int month);
  Result<TablePtr> BuildF1(int month,
                           std::vector<std::string>* columns);
  Result<TablePtr> BuildF2(int month, std::vector<std::string>* columns);
  Result<TablePtr> BuildF3(int month, std::vector<std::string>* columns);
  Result<TablePtr> BuildGraphFamily(int month, FeatureFamily family,
                                    const std::vector<int64_t>& universe,
                                    std::vector<std::string>* columns);
  Result<TablePtr> BuildTopics(int month, FeatureFamily family,
                               const std::vector<int64_t>& universe,
                               std::vector<std::string>* columns);
  Result<TablePtr> AttachSecondOrder(const WideTable& base,
                                     std::vector<std::string>* columns);
  Result<WideTable> BuildWithoutSecondOrder(int month);

  /// Lazily trains the LDA model for one text source on the
  /// pair-selection month's corpus; later months fold into the same phi
  /// so topic indices stay aligned across the sliding window.
  Result<const LdaModel*> EnsureLdaModel(bool complaint);

  Catalog* catalog_;
  WideTableOptions options_;
  std::map<int, WideTable> cache_;
  std::map<int, WideTable> cache_no_f9_;
  bool pairs_selected_ = false;
  std::vector<std::pair<std::string, std::string>> selected_pairs_;
  std::unique_ptr<LdaModel> lda_complaint_;
  std::unique_ptr<LdaModel> lda_search_;
};

}  // namespace telco

#endif  // TELCO_FEATURES_WIDE_TABLE_H_
