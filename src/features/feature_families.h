// The nine feature families of paper Table 2.

#ifndef TELCO_FEATURES_FEATURE_FAMILIES_H_
#define TELCO_FEATURES_FEATURE_FAMILIES_H_

#include <string>
#include <vector>

namespace telco {

/// Feature family labels as in Section 5.3: F1 baseline BSS features, F2
/// CS KPI/KQI, F3 PS KPI/KQI + locations, F4/F5/F6 graph features (call /
/// message / co-occurrence), F7/F8 LDA topics (complaints / search), F9
/// FM-selected second-order products.
enum class FeatureFamily : int {
  kF1Baseline = 0,
  kF2Cs = 1,
  kF3Ps = 2,
  kF4CallGraph = 3,
  kF5MsgGraph = 4,
  kF6CoocGraph = 5,
  kF7ComplaintTopics = 6,
  kF8SearchTopics = 7,
  kF9SecondOrder = 8,
};

inline constexpr int kNumFeatureFamilies = 9;

/// "F1".."F9".
const char* FeatureFamilyLabel(FeatureFamily family);

/// Human-readable description as used in the paper.
const char* FeatureFamilyDescription(FeatureFamily family);

/// All families in Table 2 order.
std::vector<FeatureFamily> AllFeatureFamilies();

}  // namespace telco

#endif  // TELCO_FEATURES_FEATURE_FAMILIES_H_
