#include "features/wide_table.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"
#include "datagen/table_names.h"
#include "features/churn_labels.h"
#include "features/graph_features.h"
#include "features/topic_features.h"
#include "ml/dataset.h"
#include "query/query.h"

namespace telco {

namespace {

// Weekly metric columns of the CDR table (everything except imsi/week).
const std::vector<std::string>& CdrMetricColumns() {
  static const std::vector<std::string> kCols = {
      "localbase_inner_call_dur", "localbase_outer_call_dur",
      "ld_call_dur",              "roam_call_dur",
      "localbase_called_dur",     "ld_called_dur",
      "roam_called_dur",          "cm_dur",
      "ct_dur",                   "busy_call_dur",
      "fest_call_dur",            "free_call_dur",
      "voice_dur",                "caller_dur",
      "all_call_cnt",             "voice_cnt",
      "local_base_call_cnt",      "ld_call_cnt",
      "roam_call_cnt",            "caller_cnt",
      "call_10010_cnt",           "call_10010_manual_cnt",
      "sms_p2p_mo_cnt",           "sms_p2p_mt_cnt",
      "sms_info_mo_cnt",          "sms_bill_cnt",
      "mms_cnt",                  "mms_p2p_mt_cnt",
      "gprs_all_flux"};
  return kCols;
}

const std::vector<std::string>& BillingFeatureColumns() {
  static const std::vector<std::string> kCols = {
      "total_charge",     "balance",
      "balance_rate",     "gprs_charge",
      "gprs_flux",        "local_call_minutes",
      "toll_call_minutes", "roam_call_minutes",
      "voice_call_minutes", "p2p_sms_mo_cnt",
      "p2p_sms_mo_charge", "gift_voice_call_dur",
      "gift_sms_mo_cnt",  "gift_flux_value",
      "distinct_serve_count", "serve_sms_count"};
  return kCols;
}

const std::vector<std::string>& CsKpiColumns() {
  static const std::vector<std::string> kCols = {
      "call_succ_rate", "e2e_conn_delay", "call_drop_rate",
      "uplink_mos",     "downlink_mos",   "ip_mos",
      "oneway_audio_cnt", "noise_cnt",    "echo_cnt"};
  return kCols;
}

const std::vector<std::string>& PsKpiColumns() {
  static const std::vector<std::string> kCols = {
      "page_resp_succ_rate", "page_resp_delay",
      "page_browse_succ_rate", "page_browse_delay",
      "page_download_throughput", "l4_ul_throughput",
      "l4_dw_throughput",    "tcp_rtt",
      "tcp_conn_succ_rate",  "streaming_filesize",
      "streaming_dw_packets", "email_succ_rate",
      "email_resp_delay",    "pagesize_avg",
      "page_succeed_flag_rate"};
  return kCols;
}

// Billing p2p_sms_mo_cnt collides with the CDR column of the same name;
// the join will suffix the CDR aggregate, so record the rename.
constexpr char kRightSuffix[] = "_cdr";

// Reads the imsi column of a table as a vector.
Result<std::vector<int64_t>> ReadImsis(const Table& table) {
  TELCO_ASSIGN_OR_RETURN(const Column* col, table.GetColumn("imsi"));
  std::vector<int64_t> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!col->IsNull(r)) out.push_back(col->GetInt64(r));
  }
  return out;
}

// Projects the table to (all current columns) + the computed extras.
Result<TablePtr> AppendComputedColumns(const TablePtr& table,
                                       std::vector<ProjectedColumn> extras) {
  std::vector<ProjectedColumn> columns;
  columns.reserve(table->schema().num_fields() + extras.size());
  for (const auto& f : table->schema().fields()) {
    columns.push_back(ProjectedColumn{f.name, Col(f.name), f.type});
  }
  for (auto& e : extras) columns.push_back(std::move(e));
  return Project(table, std::move(columns));
}

// Records one family build: "features.<F#>.build_seconds" histogram plus
// shared rows-emitted/families-built counters.
void RecordFamilyBuild(FeatureFamily family, double seconds,
                       const Result<TablePtr>& table) {
  static const Counter families_built =
      MetricsRegistry::Global().GetCounter("features.family.builds");
  static const Counter rows_emitted =
      MetricsRegistry::Global().GetCounter("features.family.rows_emitted");
  MetricsRegistry::Global()
      .GetHistogram(StrFormat("features.%s.build_seconds",
                              FeatureFamilyLabel(family)))
      .Observe(seconds);
  families_built.Add();
  if (table.ok()) rows_emitted.Add((*table)->num_rows());
}

int MaxWeek(const Table& table) {
  auto col = table.GetColumn("week");
  if (!col.ok()) return 0;
  int64_t max_week = 0;
  const Column* week = *col;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!week->IsNull(r)) max_week = std::max(max_week, week->GetInt64(r));
  }
  return static_cast<int>(max_week);
}

}  // namespace

const std::vector<std::string>& WideTable::FamilyColumns(
    FeatureFamily f) const {
  static const std::vector<std::string> kEmpty;
  const auto it = columns.find(f);
  return it == columns.end() ? kEmpty : it->second;
}

std::vector<std::string> WideTable::ColumnsForFamilies(
    const std::vector<FeatureFamily>& families) const {
  std::vector<std::string> out;
  for (FeatureFamily f : families) {
    const auto& cols = FamilyColumns(f);
    out.insert(out.end(), cols.begin(), cols.end());
  }
  return out;
}

std::vector<std::string> WideTable::AllFeatureColumns() const {
  return ColumnsForFamilies(AllFeatureFamilies());
}

WideTableBuilder::WideTableBuilder(Catalog* catalog, WideTableOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  TELCO_CHECK(catalog_ != nullptr);
}

// Builds the weekly feature window for a weekly table family: the plain
// month when staleness is 0; otherwise the month's first (weeks - k) weeks
// unioned with the previous month's last k weeks — a 4-week window ending
// k weeks early, the Velocity experiment's stale-feature emulation.
Result<TablePtr> WideTableBuilder::BuildWeeklyWindow(
    const std::string& base_name, int month) {
  TELCO_ASSIGN_OR_RETURN(TablePtr current,
                         catalog_->Get(StrFormat("%s_m%d", base_name.c_str(),
                                                 month)));
  const int k = options_.staleness_weeks;
  if (k <= 0) return current;
  const int weeks = MaxWeek(*current);
  if (k >= weeks) {
    return Status::InvalidArgument(
        StrFormat("staleness %d >= weeks per month %d", k, weeks));
  }
  TELCO_ASSIGN_OR_RETURN(
      TablePtr head,
      Filter(current, Expr::Le(Col("week"),
                               Lit(static_cast<int64_t>(weeks - k)))));
  const std::string prev_name = StrFormat("%s_m%d", base_name.c_str(),
                                          month - 1);
  if (!catalog_->Contains(prev_name)) return head;  // first month fallback
  TELCO_ASSIGN_OR_RETURN(TablePtr prev, catalog_->Get(prev_name));
  TELCO_ASSIGN_OR_RETURN(
      TablePtr tail,
      Filter(prev, Expr::Gt(Col("week"),
                            Lit(static_cast<int64_t>(weeks - k)))));
  return Union({tail, head});
}

Result<TablePtr> WideTableBuilder::BuildF1(
    int month, std::vector<std::string>* columns) {
  // --- CDR monthly aggregates (sum of the weekly metrics).
  TELCO_ASSIGN_OR_RETURN(TablePtr cdr, BuildWeeklyWindow("bss_cdr", month));
  std::vector<Aggregate> sums;
  for (const auto& c : CdrMetricColumns()) {
    sums.push_back(Aggregate{AggKind::kSum, c, c});
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr cdr_agg,
                         GroupByAggregate(cdr, {"imsi"}, sums));

  // --- Within-month usage trend: second-half over first-half usage, the
  // classic decline signal.
  TELCO_ASSIGN_OR_RETURN(
      TablePtr first_half,
      Query::FromTable(cdr)
          .Filter(Expr::Le(Col("week"), Lit(static_cast<int64_t>(2))))
          .GroupBy({"imsi"}, {{AggKind::kSum, "voice_dur", "voice_h1"},
                              {AggKind::kSum, "gprs_all_flux", "flux_h1"}})
          .Execute());
  TELCO_ASSIGN_OR_RETURN(
      TablePtr second_half,
      Query::FromTable(cdr)
          .Filter(Expr::Gt(Col("week"), Lit(static_cast<int64_t>(2))))
          .GroupBy({"imsi"}, {{AggKind::kSum, "voice_dur", "voice_h2"},
                              {AggKind::kSum, "gprs_all_flux", "flux_h2"}})
          .Execute());
  TELCO_ASSIGN_OR_RETURN(
      TablePtr trend_joined,
      HashJoin(first_half, second_half, {"imsi"}, {"imsi"}, JoinType::kLeft));
  TELCO_ASSIGN_OR_RETURN(
      TablePtr trend,
      Project(trend_joined,
              {ProjectedColumn{"imsi", Col("imsi"), DataType::kInt64},
               ProjectedColumn{
                   "voice_trend",
                   Expr::Div(Col("voice_h2"),
                             Expr::Add(Col("voice_h1"), Lit(1.0))),
                   DataType::kDouble},
               ProjectedColumn{
                   "flux_trend",
                   Expr::Div(Col("flux_h2"),
                             Expr::Add(Col("flux_h1"), Lit(1.0))),
                   DataType::kDouble}}));

  // --- Demographics with derived tenure.
  TELCO_ASSIGN_OR_RETURN(TablePtr customers, catalog_->Get(kCustomersTable));
  TELCO_ASSIGN_OR_RETURN(
      TablePtr demo,
      Project(customers,
              {ProjectedColumn{"imsi", Col("imsi"), DataType::kInt64},
               ProjectedColumn{"gender", Col("gender"), DataType::kInt64},
               ProjectedColumn{"age", Col("age"), DataType::kInt64},
               ProjectedColumn{"pspt_type", Col("pspt_type"),
                               DataType::kInt64},
               ProjectedColumn{"is_shanghai", Col("is_shanghai"),
                               DataType::kInt64},
               ProjectedColumn{"town_id", Col("town_id"), DataType::kInt64},
               ProjectedColumn{"sale_id", Col("sale_id"), DataType::kInt64},
               ProjectedColumn{"credit_value", Col("credit_value"),
                               DataType::kInt64},
               ProjectedColumn{"product_id", Col("product_id"),
                               DataType::kInt64},
               ProjectedColumn{"product_price", Col("product_price"),
                               DataType::kDouble},
               ProjectedColumn{"product_knd", Col("product_knd"),
                               DataType::kInt64},
               ProjectedColumn{
                   "innet_dura",
                   Expr::Sub(Lit(static_cast<int64_t>(month)),
                             Col("innet_month")),
                   DataType::kInt64}}));

  // --- Join: billing (the universe) <- cdr_agg <- trend <- demo <- compl.
  TELCO_ASSIGN_OR_RETURN(
      TablePtr joined,
      Query::From(*catalog_, BillingTableName(month))
          .JoinTable(cdr_agg, {"imsi"}, {"imsi"}, JoinType::kLeft)
          .JoinTable(trend, {"imsi"}, {"imsi"}, JoinType::kLeft)
          .JoinTable(demo, {"imsi"}, {"imsi"}, JoinType::kLeft)
          .Join(*catalog_, ComplaintTableName(month), {"imsi"}, {"imsi"},
                JoinType::kLeft)
          .Execute());

  // --- Derived ratios.
  TELCO_ASSIGN_OR_RETURN(
      joined,
      AppendComputedColumns(
          joined,
          {ProjectedColumn{
               "avg_call_dur",
               Expr::Div(Col("voice_dur"),
                         Expr::Add(Col("all_call_cnt"), Lit(1.0))),
               DataType::kDouble},
           ProjectedColumn{
               "charge_per_minute",
               Expr::Div(Col("total_charge"),
                         Expr::Add(Col("voice_call_minutes"), Lit(1.0))),
               DataType::kDouble}}));

  // Record the F1 feature-column names. The CDR aggregate that collided
  // with a billing column arrives suffixed by the join.
  columns->clear();
  for (const auto& c : BillingFeatureColumns()) columns->push_back(c);
  for (const auto& c : CdrMetricColumns()) {
    columns->push_back(joined->schema().HasField(c) ? c : c + "_right");
  }
  columns->insert(columns->end(),
                  {"voice_trend", "flux_trend", "gender", "age", "pspt_type",
                   "is_shanghai", "town_id", "sale_id", "credit_value",
                   "product_id", "product_price", "product_knd", "innet_dura",
                   "complaint_cnt", "avg_call_dur", "charge_per_minute"});
  for (const auto& c : *columns) {
    if (!joined->schema().HasField(c)) {
      return Status::Internal("F1 feature column missing: " + c);
    }
  }
  return joined;
}

Result<TablePtr> WideTableBuilder::BuildF2(
    int month, std::vector<std::string>* columns) {
  TELCO_ASSIGN_OR_RETURN(TablePtr cs, BuildWeeklyWindow("oss_cs", month));
  std::vector<Aggregate> means;
  columns->clear();
  for (const auto& c : CsKpiColumns()) {
    means.push_back(Aggregate{AggKind::kMean, c, c});
    columns->push_back(c);
  }
  return GroupByAggregate(cs, {"imsi"}, means);
}

Result<TablePtr> WideTableBuilder::BuildF3(
    int month, std::vector<std::string>* columns) {
  TELCO_ASSIGN_OR_RETURN(TablePtr ps, BuildWeeklyWindow("oss_ps", month));
  std::vector<Aggregate> means;
  columns->clear();
  for (const auto& c : PsKpiColumns()) {
    means.push_back(Aggregate{AggKind::kMean, c, c});
    columns->push_back(c);
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr ps_agg,
                         GroupByAggregate(ps, {"imsi"}, means));

  // Top-5 stay locations pivoted to mr_lat_r / mr_lon_r (the paper's "10
  // most frequent location features").
  TELCO_ASSIGN_OR_RETURN(TablePtr mr, catalog_->Get(MrTableName(month)));
  TablePtr joined = ps_agg;
  for (int r = 1; r <= 5; ++r) {
    TELCO_ASSIGN_OR_RETURN(
        TablePtr rank_rows,
        Query::FromTable(mr)
            .Filter(Expr::Eq(Col("rank"), Lit(static_cast<int64_t>(r))))
            .Project({ProjectedColumn{"imsi", Col("imsi"), DataType::kInt64},
                      ProjectedColumn{StrFormat("mr_lat_%d", r), Col("lat"),
                                      DataType::kDouble},
                      ProjectedColumn{StrFormat("mr_lon_%d", r), Col("lon"),
                                      DataType::kDouble}})
            .Execute());
    TELCO_ASSIGN_OR_RETURN(joined, HashJoin(joined, rank_rows, {"imsi"},
                                            {"imsi"}, JoinType::kLeft));
    columns->push_back(StrFormat("mr_lat_%d", r));
    columns->push_back(StrFormat("mr_lon_%d", r));
  }
  return joined;
}

Result<TablePtr> WideTableBuilder::BuildGraphFamily(
    int month, FeatureFamily family, const std::vector<int64_t>& universe,
    std::vector<std::string>* columns) {
  std::string table_base;
  std::string prefix;
  switch (family) {
    case FeatureFamily::kF4CallGraph:
      table_base = "graph_call";
      prefix = "call";
      break;
    case FeatureFamily::kF5MsgGraph:
      table_base = "graph_msg";
      prefix = "msg";
      break;
    case FeatureFamily::kF6CoocGraph:
      table_base = "graph_cooc";
      prefix = "cooc";
      break;
    default:
      return Status::InvalidArgument("not a graph family");
  }
  TELCO_ASSIGN_OR_RETURN(
      TablePtr current,
      catalog_->Get(StrFormat("%s_m%d", table_base.c_str(), month)));

  GraphFeatureInputs inputs;
  inputs.current_edges = current.get();
  inputs.current_universe = &universe;
  inputs.pool = options_.pool;
  inputs.seed = HashCombine64(options_.seed,
                              static_cast<uint64_t>(month) * 10 +
                                  static_cast<uint64_t>(family));

  TablePtr previous;
  std::vector<int64_t> prev_universe;
  std::unordered_map<int64_t, int> prev_labels;
  const std::string prev_name =
      StrFormat("%s_m%d", table_base.c_str(), month - 1);
  if (month > 1 && catalog_->Contains(prev_name)) {
    TELCO_ASSIGN_OR_RETURN(previous, catalog_->Get(prev_name));
    TELCO_ASSIGN_OR_RETURN(TablePtr prev_billing,
                           catalog_->Get(BillingTableName(month - 1)));
    TELCO_ASSIGN_OR_RETURN(prev_universe, ReadImsis(*prev_billing));
    TELCO_ASSIGN_OR_RETURN(prev_labels, LoadChurnLabels(*catalog_, month - 1));
    inputs.previous_edges = previous.get();
    inputs.previous_universe = &prev_universe;
    inputs.previous_labels = &prev_labels;
  }
  columns->assign({prefix + "_pagerank", prefix + "_lp_churn"});
  return ComputeGraphFeatures(inputs, prefix);
}

Result<const LdaModel*> WideTableBuilder::EnsureLdaModel(bool complaint) {
  std::unique_ptr<LdaModel>& slot =
      complaint ? lda_complaint_ : lda_search_;
  if (slot != nullptr) return slot.get();
  const int month = options_.pair_selection_month;
  const std::string table_name = complaint ? ComplaintTextTableName(month)
                                           : SearchTextTableName(month);
  const std::string vocab_name =
      complaint ? kComplaintVocabTable : kSearchVocabTable;
  TELCO_ASSIGN_OR_RETURN(TablePtr text, catalog_->Get(table_name));
  TELCO_ASSIGN_OR_RETURN(TablePtr vocab, catalog_->Get(vocab_name));
  LdaOptions lda = options_.lda;
  lda.pool = options_.pool;
  lda.seed = HashCombine64(options_.seed, complaint ? 7 : 8);
  TELCO_ASSIGN_OR_RETURN(LdaModel model,
                         TrainLdaOnTable(*text, vocab->num_rows(), lda));
  slot = std::make_unique<LdaModel>(std::move(model));
  return slot.get();
}

Result<TablePtr> WideTableBuilder::BuildTopics(
    int month, FeatureFamily family, const std::vector<int64_t>& universe,
    std::vector<std::string>* columns) {
  const bool complaint = family == FeatureFamily::kF7ComplaintTopics;
  const std::string table_name = complaint ? ComplaintTextTableName(month)
                                           : SearchTextTableName(month);
  const std::string vocab_name =
      complaint ? kComplaintVocabTable : kSearchVocabTable;
  const std::string prefix = complaint ? "cmpl" : "srch";
  TELCO_ASSIGN_OR_RETURN(TablePtr text, catalog_->Get(table_name));
  TELCO_ASSIGN_OR_RETURN(TablePtr vocab, catalog_->Get(vocab_name));
  TELCO_ASSIGN_OR_RETURN(const LdaModel* model, EnsureLdaModel(complaint));

  columns->clear();
  for (uint32_t k = 0; k < model->num_topics(); ++k) {
    columns->push_back(StrFormat("%s_topic%u", prefix.c_str(), k));
  }
  return ComputeTopicFeatures(*model, *text, universe, vocab->num_rows(),
                              prefix, options_.pool);
}

Result<std::vector<std::pair<std::string, std::string>>>
WideTableBuilder::SelectedSecondOrderPairs() {
  if (pairs_selected_) return selected_pairs_;
  // Fit the FM selector on the pair-selection month's labelled features.
  TELCO_ASSIGN_OR_RETURN(const WideTable base,
                         BuildWithoutSecondOrder(options_.pair_selection_month));
  TELCO_ASSIGN_OR_RETURN(
      const auto labels,
      LoadChurnLabels(*catalog_, options_.pair_selection_month));

  // Pairs are selected among the basic (F1) features, matching the paper:
  // the second-order features of Fig 4 / Table 4 (e.g. innet_dura x
  // total_charge) are products of basic BSS features.
  const std::vector<std::string> feature_cols =
      base.FamilyColumns(FeatureFamily::kF1Baseline);
  TELCO_ASSIGN_OR_RETURN(Dataset data,
                         Dataset::FromTableUnlabeled(*base.table,
                                                     feature_cols));
  TELCO_ASSIGN_OR_RETURN(const Column* imsi_col,
                         base.table->GetColumn("imsi"));
  for (size_t r = 0; r < base.table->num_rows(); ++r) {
    const auto it = labels.find(imsi_col->GetInt64(r));
    data.set_label(r, it != labels.end() ? it->second : 0);
  }

  FactorizationMachineOptions fm_options = options_.fm;
  fm_options.seed = HashCombine64(options_.seed, 0xF9F9ULL);
  FactorizationMachine fm(fm_options);
  TELCO_RETURN_NOT_OK(fm.Fit(data));
  const auto ranked = fm.RankPairWeights(options_.num_second_order);
  selected_pairs_.clear();
  for (const auto& p : ranked) {
    selected_pairs_.emplace_back(feature_cols[p.i], feature_cols[p.j]);
  }
  pairs_selected_ = true;
  TELCO_LOG(Info) << "F9: selected " << selected_pairs_.size()
                  << " second-order pairs (top: "
                  << (selected_pairs_.empty()
                          ? "none"
                          : selected_pairs_[0].first + " x " +
                                selected_pairs_[0].second)
                  << ")";
  return selected_pairs_;
}

Result<TablePtr> WideTableBuilder::AttachSecondOrder(
    const WideTable& base, std::vector<std::string>* columns) {
  TELCO_ASSIGN_OR_RETURN(const auto pairs, SelectedSecondOrderPairs());
  std::vector<ProjectedColumn> extras;
  columns->clear();
  for (const auto& [a, b] : pairs) {
    const std::string name = a + "_x_" + b;
    extras.push_back(ProjectedColumn{name, Expr::Mul(Col(a), Col(b)),
                                     DataType::kDouble});
    columns->push_back(name);
  }
  return AppendComputedColumns(base.table, std::move(extras));
}

Result<WideTable> WideTableBuilder::BuildWithoutSecondOrder(int month) {
  const auto it = cache_no_f9_.find(month);
  if (it != cache_no_f9_.end()) return it->second;

  WideTable wide;
  std::vector<std::string> cols;
  TraceSpan build_span(StrFormat("features.build_wide:m%d", month));

  Result<TablePtr> f1 = [&]() -> Result<TablePtr> {
    TraceSpan span("features.F1");
    Stopwatch watch;
    Result<TablePtr> built = BuildF1(month, &cols);
    RecordFamilyBuild(FeatureFamily::kF1Baseline, watch.ElapsedSeconds(),
                      built);
    return built;
  }();
  TELCO_ASSIGN_OR_RETURN(TablePtr table, std::move(f1));
  wide.columns[FeatureFamily::kF1Baseline] = cols;

  TELCO_ASSIGN_OR_RETURN(const std::vector<int64_t> universe,
                         ReadImsis(*table));

  // F1 fixed the universe; families F2..F8 only read the (thread-safe)
  // catalog and the universe, so fan them out across the pool. The F7/F8
  // tasks may both lazily train an LDA model, but they use distinct slots
  // (complaint vs search), so they never race. Each family lands in its
  // own slot and the joins below run serially in the fixed F2..F8 order,
  // making the wide table bit-identical to a serial build.
  static constexpr FeatureFamily kParallelFamilies[] = {
      FeatureFamily::kF2Cs,           FeatureFamily::kF3Ps,
      FeatureFamily::kF4CallGraph,    FeatureFamily::kF5MsgGraph,
      FeatureFamily::kF6CoocGraph,    FeatureFamily::kF7ComplaintTopics,
      FeatureFamily::kF8SearchTopics};
  constexpr size_t kNumParallel = std::size(kParallelFamilies);
  std::vector<Result<TablePtr>> family_tables(
      kNumParallel, Result<TablePtr>(Status::Internal("family not built")));
  std::vector<std::vector<std::string>> family_cols(kNumParallel);
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
  pool->ParallelFor(0, kNumParallel, [&](size_t i) {
    TraceSpan span(StrFormat("features.%s",
                             FeatureFamilyLabel(kParallelFamilies[i])));
    Stopwatch watch;
    switch (kParallelFamilies[i]) {
      case FeatureFamily::kF2Cs:
        family_tables[i] = BuildF2(month, &family_cols[i]);
        break;
      case FeatureFamily::kF3Ps:
        family_tables[i] = BuildF3(month, &family_cols[i]);
        break;
      case FeatureFamily::kF4CallGraph:
      case FeatureFamily::kF5MsgGraph:
      case FeatureFamily::kF6CoocGraph:
        family_tables[i] = BuildGraphFamily(month, kParallelFamilies[i],
                                            universe, &family_cols[i]);
        break;
      default:
        family_tables[i] = BuildTopics(month, kParallelFamilies[i], universe,
                                       &family_cols[i]);
        break;
    }
    RecordFamilyBuild(kParallelFamilies[i], watch.ElapsedSeconds(),
                      family_tables[i]);
  });
  // Surface the first failure in family order (deterministic across runs).
  for (size_t i = 0; i < kNumParallel; ++i) {
    if (!family_tables[i].ok()) return family_tables[i].status();
  }
  for (size_t i = 0; i < kNumParallel; ++i) {
    wide.columns[kParallelFamilies[i]] = std::move(family_cols[i]);
    TELCO_ASSIGN_OR_RETURN(table,
                           HashJoin(table, *family_tables[i], {"imsi"},
                                    {"imsi"}, JoinType::kLeft, kRightSuffix));
  }

  wide.table = std::move(table);
  cache_no_f9_.emplace(month, wide);
  return wide;
}

Result<WideTable> WideTableBuilder::Build(int month) {
  const auto it = cache_.find(month);
  if (it != cache_.end()) return it->second;

  TELCO_ASSIGN_OR_RETURN(WideTable wide, BuildWithoutSecondOrder(month));
  std::vector<std::string> cols;
  Result<TablePtr> with_f9 = [&]() -> Result<TablePtr> {
    TraceSpan span("features.F9");
    Stopwatch watch;
    Result<TablePtr> built = AttachSecondOrder(wide, &cols);
    RecordFamilyBuild(FeatureFamily::kF9SecondOrder, watch.ElapsedSeconds(),
                      built);
    return built;
  }();
  TELCO_RETURN_NOT_OK(with_f9.status());
  wide.table = std::move(with_f9).ValueOrDie();
  wide.columns[FeatureFamily::kF9SecondOrder] = cols;

  InjectCached(month, wide);
  return wide;
}

void WideTableBuilder::InjectCached(int month, WideTable wide) {
  if (options_.cache_in_catalog) {
    const std::string name =
        options_.staleness_weeks > 0
            ? StrFormat("wide_m%d_s%d", month, options_.staleness_weeks)
            : StrFormat("wide_m%d", month);
    catalog_->RegisterOrReplace(name, wide.table);
  }
  cache_.insert_or_assign(month, std::move(wide));
}

}  // namespace telco
