#include "features/topic_features.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace telco {

Result<std::unordered_map<int64_t, Document>> GatherDocuments(
    const Table& text_table, size_t vocab_size) {
  TELCO_ASSIGN_OR_RETURN(const Column* col_imsi,
                         text_table.GetColumn("imsi"));
  TELCO_ASSIGN_OR_RETURN(const Column* col_word,
                         text_table.GetColumn("word_id"));
  TELCO_ASSIGN_OR_RETURN(const Column* col_cnt, text_table.GetColumn("cnt"));

  std::unordered_map<int64_t, Document> docs;
  for (size_t r = 0; r < text_table.num_rows(); ++r) {
    if (col_imsi->IsNull(r) || col_word->IsNull(r) || col_cnt->IsNull(r)) {
      continue;
    }
    const int64_t word = col_word->GetInt64(r);
    const int64_t cnt = col_cnt->GetInt64(r);
    if (word < 0 || static_cast<size_t>(word) >= vocab_size || cnt <= 0) {
      continue;
    }
    docs[col_imsi->GetInt64(r)].word_counts.emplace_back(
        static_cast<uint32_t>(word), static_cast<uint32_t>(cnt));
  }
  return docs;
}

Result<LdaModel> TrainLdaOnTable(const Table& text_table, size_t vocab_size,
                                 const LdaOptions& options) {
  TELCO_ASSIGN_OR_RETURN(const auto docs,
                         GatherDocuments(text_table, vocab_size));
  Corpus corpus(vocab_size);
  for (const auto& [imsi, doc] : docs) {
    if (doc.word_counts.empty()) continue;
    TELCO_RETURN_NOT_OK(corpus.AddDocument(doc));
  }
  if (corpus.num_documents() < 2) {
    return Status::InvalidArgument("too few documents to train LDA");
  }
  return LdaModel::Train(corpus, options);
}

Result<TablePtr> ComputeTopicFeatures(const LdaModel& model,
                                      const Table& text_table,
                                      const std::vector<int64_t>& universe,
                                      size_t vocab_size,
                                      const std::string& prefix,
                                      ThreadPool* pool) {
  if (universe.empty()) {
    return Status::InvalidArgument("empty customer universe");
  }
  TELCO_ASSIGN_OR_RETURN(const auto docs,
                         GatherDocuments(text_table, vocab_size));

  const uint32_t K = model.num_topics();
  std::vector<Field> fields;
  fields.push_back(Field{"imsi", DataType::kInt64});
  for (uint32_t k = 0; k < K; ++k) {
    fields.push_back(
        Field{StrFormat("%s_topic%u", prefix.c_str(), k), DataType::kDouble});
  }

  // Fold-in inference per customer: independent rows, so chunk the
  // universe across the pool into a preallocated theta matrix, then
  // append rows serially in universe order.
  std::vector<double> thetas(universe.size() * K);
  const std::vector<double> uniform(K, 1.0 / K);
  RunParallelFor(pool, 0, universe.size(), [&](size_t i) {
    const auto it = docs.find(universe[i]);
    const std::vector<double> theta =
        (it == docs.end() || it->second.word_counts.empty())
            ? uniform
            : model.InferDocument(it->second);
    std::copy(theta.begin(), theta.end(), thetas.begin() + i * K);
  });

  TableBuilder builder(Schema(std::move(fields)));
  builder.Reserve(universe.size());
  std::vector<Value> row(1 + K);
  for (size_t i = 0; i < universe.size(); ++i) {
    row[0] = Value(universe[i]);
    for (uint32_t k = 0; k < K; ++k) row[1 + k] = Value(thetas[i * K + k]);
    builder.AppendRowUnchecked(row);
  }
  return builder.Finish();
}

}  // namespace telco
