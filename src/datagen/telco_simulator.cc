#include "datagen/telco_simulator.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace telco {

bool SimTruth::Churned(int month, int64_t imsi) const {
  if (month < 1 || month > static_cast<int>(months.size())) return false;
  const MonthTruth& mt = months[month - 1];
  for (size_t i = 0; i < mt.active_imsis.size(); ++i) {
    if (mt.active_imsis[i] == imsi) return mt.churned[i] != 0;
  }
  return false;
}

namespace {

// Resolves the config's scale for the constructor. Population's ctor
// needs a concrete config, so a resolution failure is parked in *status
// (surfaced by Run) and safe defaults are simulated instead.
SimConfig ResolveForCtor(SimConfig config, Status* status) {
  Result<SimConfig> resolved = ResolveScale(std::move(config));
  if (resolved.ok()) return std::move(resolved).ValueOrDie();
  *status = resolved.status();
  return SimConfig{};
}

}  // namespace

TelcoSimulator::TelcoSimulator(SimConfig config)
    : config_(ResolveForCtor(std::move(config), &config_resolution_)),
      population_(config_),
      textgen_(config_) {}

Status TelcoSimulator::Run(Catalog* catalog) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  CatalogWarehouseSink sink(catalog);
  return Run(&sink);
}

Status TelcoSimulator::Run(WarehouseSink* sink, const EmitOptions& options) {
  TELCO_RETURN_NOT_OK(config_resolution_);
  if (sink == nullptr) {
    return Status::InvalidArgument("null sink");
  }
  TELCO_RETURN_NOT_OK(EmitVocabTables(textgen_, sink));
  truth_.months.clear();
  if (record_truth_) truth_.months.reserve(config_.num_months);
  for (int m = 1; m <= config_.num_months; ++m) {
    population_.AdvanceMonth();
    TELCO_RETURN_NOT_OK(EmitMonthTables(population_, textgen_, sink, options));

    MonthTruth mt;
    mt.month = m;
    mt.active_imsis.reserve(population_.active().size());
    for (uint32_t index : population_.active()) {
      const CustomerTraits& t = population_.customers()[index];
      const CustomerMonthState& s = population_.state(index);
      mt.active_imsis.push_back(t.imsi);
      mt.churned.push_back(s.churned ? 1 : 0);
      mt.recharge_day.push_back(s.recharge_day);
      mt.intent.push_back(s.intent ? 1 : 0);
    }
    TELCO_LOG(Info) << "month " << m << ": " << mt.active_imsis.size()
                    << " active, " << mt.NumChurners() << " churners ("
                    << mt.ChurnRate() * 100.0 << "%)";
    if (record_truth_) truth_.months.push_back(std::move(mt));
  }
  // The demographics table is emitted last so it covers every joiner.
  TELCO_RETURN_NOT_OK(EmitCustomersTable(population_, sink));
  if (record_truth_) {
    for (const CustomerTraits& t : population_.customers()) {
      truth_.offer_affinity[t.imsi] = t.offer_affinity;
    }
  }
  return sink->Finish();
}

std::vector<ChurnRatePoint> TelcoSimulator::ChurnRateSeries(
    int num_months, const SimConfig& config) {
  // Figure 1 is a context plot: monthly prepaid/postpaid churn rates with
  // seasonal wobble around the paper's reported means (9.4% vs 5.2%).
  std::vector<ChurnRatePoint> out;
  out.reserve(num_months);
  Rng rng(HashCombine64(config.seed, 0xF161ULL));
  for (int m = 1; m <= num_months; ++m) {
    const double season = 0.012 * std::sin(m * 0.7);
    ChurnRatePoint p;
    p.month = m;
    p.prepaid_rate = Clamp(
        config.prepaid_churn_mean + season + rng.Gaussian(0.0, 0.005), 0.01,
        0.3);
    p.postpaid_rate = Clamp(
        config.postpaid_churn_mean + 0.5 * season + rng.Gaussian(0.0, 0.003),
        0.005, 0.2);
    out.push_back(p);
  }
  return out;
}

}  // namespace telco
