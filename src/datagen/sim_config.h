// SimConfig: all knobs of the synthetic telco population simulator.
//
// The simulator replaces the paper's proprietary 9-month dataset of ~2.1M
// prepaid customers (see DESIGN.md, Substitutions). Its latent churn
// process is parameterised so the paper's qualitative findings reproduce:
//
//  * churn is *abrupt*: a short-lived "competitor intent" state forms in
//    the churn month itself, driven by bad network experience, declining
//    engagement, social contagion and the low-tenure x low-spend
//    interaction — so early features degrade sharply (Fig 8);
//  * balance and PS download throughput are the strongest observable
//    correlates (Table 4);
//  * PS (data) quality drives intent more than CS (voice) quality
//    (Table 2: F3 > F2);
//  * contagion flows through co-occurrence communities and call ties,
//    while the message graph is sparse because of OTT substitution
//    (Table 2: F6, F4 >> F5);
//  * complaints track dissatisfaction only loosely (Table 2: F7 weak,
//    F8 search topics stronger);
//  * month-to-month drift limits how much old training data helps
//    (Fig 7 diminishing returns).

#ifndef TELCO_DATAGEN_SIM_CONFIG_H_
#define TELCO_DATAGEN_SIM_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"

namespace telco {

/// Default population when neither num_customers nor scale_factor is set.
inline constexpr size_t kDefaultNumCustomers = 20000;

/// SF 1.0 = the paper's ~2.1M prepaid customers (hyrise's
/// TpchTableGenerator(scale_factor) pattern).
inline constexpr double kPaperCustomersPerScaleFactor = 2.1e6;

struct SimConfig {
  // ------------------------------------------------------------- scale
  /// Active prepaid customers per month (the paper has ~2.1M; benches
  /// default to a 1/100 scale preserving the churn-rate geometry).
  /// Interacts with `scale_factor` via ResolveScale below: an explicit
  /// num_customers wins; otherwise scale_factor * 2.1M is used.
  size_t num_customers = kDefaultNumCustomers;
  /// Population as a fraction of the paper's 2.1M customers (0 = unset,
  /// use num_customers). SF 1.0 ≈ 2.1M. Resolved by ResolveScale.
  double scale_factor = 0.0;
  /// Simulated months (the paper's dataset spans 9).
  int num_months = 9;
  /// Days per month for the recharge-period labelling rule.
  int days_per_month = 30;
  /// Weekly sub-periods per month for the weekly OSS/CDR tables.
  int weeks_per_month = 4;
  uint64_t seed = 2015;

  // -------------------------------------------------- population shape
  /// Social communities (students, workplaces, villages); contagion and
  /// co-occurrence operate within these.
  size_t num_communities = 250;
  /// Radio cells; each has a persistent quality level.
  size_t num_cells = 120;
  size_t num_towns = 18;
  size_t num_sale_areas = 40;
  size_t num_products = 12;
  /// Mean number of call ties per customer in the base social graph.
  double mean_call_degree = 6.0;
  /// Fraction of ties kept inside the customer's own community.
  double community_tie_fraction = 0.7;
  /// Fraction of customers who still use SMS at all (OTT substitution).
  double sms_user_fraction = 0.35;

  // ----------------------------------------------------- churn process
  /// Baseline monthly intent formation probability (tuned so the realised
  /// monthly churn rate matches the paper's ~9.2% prepaid average).
  double intent_base = 0.0105;
  /// Intent boost per unit of PS (data) dissatisfaction.
  double intent_ps_weight = 8.5;
  /// Intent boost per unit of CS (voice) dissatisfaction.
  double intent_cs_weight = 8.0;
  /// Intent boost per unit of engagement decline.
  double intent_engagement_weight = 1.3;
  /// Intent boost per unit fraction of neighbours who churned last month.
  double intent_social_weight = 3.5;
  /// Intent boost for the low-tenure x low-spend interaction (F9 signal).
  double intent_tenure_spend_weight = 2.5;
  /// Monthly community-level shock probability (whole community drifts
  /// toward churning together, e.g. graduating students).
  double community_shock_prob = 0.06;
  /// P(an active shock persists into the next month) — persistence is what
  /// makes last month's churner neighbourhoods predictive (F6).
  double community_shock_persist = 0.80;
  double community_shock_boost = 2.3;
  /// P(churn | intent) and P(churn | no intent).
  double churn_given_intent = 0.93;
  double churn_given_no_intent = 0.012;
  /// Month-to-month drift of the intent base (Fig 7 staleness).
  double month_drift_scale = 0.18;

  // ------------------------------------------------------- observables
  /// P(an intent customer visibly disengages in BSS observables). The
  /// rest churn "silently": their balance/usage stay normal, and only the
  /// OSS-side signals (network quality, searches, social neighbourhood)
  /// can catch them — this is what makes F2..F8 additive over F1.
  double usage_expression_prob = 0.86;
  /// How strongly intent depresses month-end balance.
  double balance_intent_drop = 0.80;
  /// How strongly intent depresses usage (calls, data) in its weeks.
  double usage_intent_drop = 0.50;
  /// Observation noise scale on KPI features.
  double kpi_noise = 0.25;
  /// P(a dissatisfied customer files a complaint) — kept low: "although a
  /// majority of churners have bad experience, they still do not complain".
  double complaint_rate = 0.28;
  /// P(an intent customer's searches contain competitor topics).
  double competitor_search_rate = 0.28;
  /// Background competitor-ish searches among non-intent customers.
  double competitor_search_noise = 0.08;

  // ------------------------------------------------------ recharge/fig5
  /// Geometric day-to-recharge parameter for non-churners (most recharge
  /// within the first days of the recharge period).
  double recharge_day_p = 0.35;
  /// Fraction of churners who eventually recharge after day 15 (the < 5%
  /// tail of Fig 5).
  double late_recharge_fraction = 0.18;

  // ------------------------------------------------------ postpaid fig1
  /// Postpaid monthly churn-rate mean (paper Fig 1: ~5.2% vs ~9.4%).
  double postpaid_churn_mean = 0.052;
  double prepaid_churn_mean = 0.094;

  // --------------------------------------------------------- retention
  /// Acceptance probability when the offer matches the latent affinity.
  double accept_matched = 0.42;
  /// Acceptance probability for a mismatched (but non-trivial) offer.
  double accept_mismatched = 0.14;
  /// Acceptance probability for customers with no offer affinity.
  double accept_none_affinity = 0.02;
  /// Recharge probability of a true churner with no offer (Group A).
  double churner_base_recharge = 0.006;
};

/// \brief The population size the config resolves to, under the single
/// validated rule: an explicit (non-default) `num_customers` wins;
/// otherwise, if `scale_factor > 0`, round(scale_factor * 2.1M); else the
/// default. Nonsensical values (num_customers == 0, scale_factor
/// negative / NaN / inf / so small it rounds to zero customers) are
/// InvalidArgument.
Result<size_t> ResolveNumCustomers(const SimConfig& config);

/// \brief Applies ResolveNumCustomers and, when the scale factor drove
/// the population, scales the default community/cell counts
/// proportionally (min 1) so community sizes — and with them the churn
/// contagion geometry — stay scale-invariant. Knobs the caller set
/// explicitly (non-default values) are left untouched.
Result<SimConfig> ResolveScale(SimConfig config);

}  // namespace telco

#endif  // TELCO_DATAGEN_SIM_CONFIG_H_
