#include "datagen/text_gen.h"

#include <map>

#include "common/string_util.h"

namespace telco {

namespace {

const char* kComplaintTopicNames[TextGenerator::kNumComplaintTopics] = {
    "billing", "netspeed", "calldrop", "service", "coverage", "device"};

const char* kSearchTopicNames[TextGenerator::kNumSearchTopics] = {
    "video", "shopping", "news",    "game",
    "music", "travel",   "handset", "competitor"};

}  // namespace

TextGenerator::TextGenerator(const SimConfig& config) : config_(config) {
  // Vocabulary layout: topic t owns word ids [t * kWordsPerTopic,
  // (t+1) * kWordsPerTopic). Fixed insertion order keeps ids stable.
  for (int t = 0; t < kNumComplaintTopics; ++t) {
    for (int w = 0; w < kWordsPerTopic; ++w) {
      complaint_vocab_.AddOccurrence(
          StrFormat("%s_%02d", kComplaintTopicNames[t], w));
    }
  }
  for (int t = 0; t < kNumSearchTopics; ++t) {
    for (int w = 0; w < kWordsPerTopic; ++w) {
      search_vocab_.AddOccurrence(
          StrFormat("%s_%02d", kSearchTopicNames[t], w));
    }
  }
}

Document TextGenerator::SampleDoc(const std::vector<double>& topic_mix,
                                  int length, int words_per_topic,
                                  size_t vocab_size, Rng* rng) const {
  std::map<uint32_t, uint32_t> counts;
  for (int i = 0; i < length; ++i) {
    const size_t topic = rng->Categorical(topic_mix);
    // Zipf-ish skew inside a topic: low word indices are more frequent.
    const double u = rng->Uniform();
    const int w = static_cast<int>(u * u * words_per_topic);
    const uint32_t word_id = static_cast<uint32_t>(
        topic * static_cast<size_t>(words_per_topic) + w);
    if (word_id < vocab_size) ++counts[word_id];
  }
  Document doc;
  doc.word_counts.assign(counts.begin(), counts.end());
  return doc;
}

Document TextGenerator::ComplaintDoc(const CustomerTraits& traits,
                                     const CustomerMonthState& state,
                                     Rng* rng) const {
  if (state.complaints == 0) return Document{};
  // Topic mix follows the complaint cause: bad PS -> netspeed, bad CS ->
  // calldrop/coverage, plus background billing/service/device noise.
  std::vector<double> mix(kNumComplaintTopics, 0.15);
  mix[1] += 2.2 * (1.0 - state.ps_quality);   // netspeed
  mix[2] += 1.8 * (1.0 - state.cs_quality);   // calldrop
  mix[4] += 0.9 * (1.0 - state.cs_quality);   // coverage
  mix[0] += 0.4 * rng->Uniform();             // billing
  if (state.intent) {
    // Pre-churn complaints skew toward billing/service disputes — a mild
    // early signal (the paper finds complaint topics only weakly useful).
    mix[0] += 0.5;
    mix[3] += 0.5;
  }
  (void)traits;
  const int length = 4 + rng->Poisson(5.0 * state.complaints);
  return SampleDoc(mix, length, kWordsPerTopic, complaint_vocab_.size(), rng);
}

Document TextGenerator::SearchDoc(const CustomerTraits& traits,
                                  const CustomerMonthState& state,
                                  Rng* rng) const {
  // Persistent interests derived deterministically from the customer so
  // their topic profile is stable month over month.
  Rng interests_rng(HashCombine64(static_cast<uint64_t>(traits.imsi),
                                  0x1234abcdULL));
  std::vector<double> mix =
      interests_rng.Dirichlet(kNumSearchTopics - 1, 0.5);
  mix.push_back(0.0);  // competitor topic off by default
  // Handset interest rises slightly with tenure (upgrade season).
  mix[6] += 0.1;
  if (state.competitor_search) {
    // Intent customers search the competitor's portal/hotline heavily.
    for (auto& m : mix) m *= 0.5;
    mix[kCompetitorTopic] = 1.1;
  }
  const double activity =
      state.engagement * (0.4 + 1.2 * traits.data_affinity);
  int length = rng->Poisson(3.0 + 14.0 * activity);
  if (state.competitor_search) {
    // Intent customers search the competitor intensively (portal, hotline,
    // porting procedure, tariffs) on top of their normal queries.
    length += 4 + rng->Poisson(8.0);
  }
  if (length == 0) return Document{};
  return SampleDoc(mix, length, kWordsPerTopic, search_vocab_.size(), rng);
}

}  // namespace telco
