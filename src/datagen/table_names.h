// Canonical warehouse table names shared by the emitters (producers) and
// the feature-engineering layer (consumers).

#ifndef TELCO_DATAGEN_TABLE_NAMES_H_
#define TELCO_DATAGEN_TABLE_NAMES_H_

#include <string>

#include "common/string_util.h"

namespace telco {

inline constexpr char kCustomersTable[] = "customers";
inline constexpr char kComplaintVocabTable[] = "complaint_vocab";
inline constexpr char kSearchVocabTable[] = "search_vocab";

/// BSS voice/message/data CDR aggregates (weekly rows).
inline std::string CdrTableName(int month) {
  return StrFormat("bss_cdr_m%d", month);
}
/// BSS billing summary (monthly rows).
inline std::string BillingTableName(int month) {
  return StrFormat("bss_billing_m%d", month);
}
/// BSS recharge-period outcomes (the labelling source).
inline std::string RechargeTableName(int month) {
  return StrFormat("bss_recharge_m%d", month);
}
/// BSS complaint counts.
inline std::string ComplaintTableName(int month) {
  return StrFormat("bss_complaint_m%d", month);
}
/// Complaint text as sparse (imsi, word_id, cnt) rows.
inline std::string ComplaintTextTableName(int month) {
  return StrFormat("bss_complaint_text_m%d", month);
}
/// OSS DPI search-query text as sparse (imsi, word_id, cnt) rows.
inline std::string SearchTextTableName(int month) {
  return StrFormat("oss_search_text_m%d", month);
}
/// OSS circuit-switch KPI/KQI (weekly rows).
inline std::string CsKpiTableName(int month) {
  return StrFormat("oss_cs_m%d", month);
}
/// OSS packet-switch KPI/KQI (weekly rows).
inline std::string PsKpiTableName(int month) {
  return StrFormat("oss_ps_m%d", month);
}
/// OSS measurement-report top-5 stay locations.
inline std::string MrTableName(int month) {
  return StrFormat("oss_mr_m%d", month);
}
/// Monthly realised graph edges.
inline std::string CallEdgesTableName(int month) {
  return StrFormat("graph_call_m%d", month);
}
inline std::string MsgEdgesTableName(int month) {
  return StrFormat("graph_msg_m%d", month);
}
inline std::string CoocEdgesTableName(int month) {
  return StrFormat("graph_cooc_m%d", month);
}

}  // namespace telco

#endif  // TELCO_DATAGEN_TABLE_NAMES_H_
