#include "datagen/emitters.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/math_util.h"
#include "datagen/table_names.h"

namespace telco {

namespace {

constexpr DataType kI = DataType::kInt64;
constexpr DataType kD = DataType::kDouble;
constexpr DataType kS = DataType::kString;

Schema CdrSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"localbase_inner_call_dur", kD},
                 {"localbase_outer_call_dur", kD},
                 {"ld_call_dur", kD},
                 {"roam_call_dur", kD},
                 {"localbase_called_dur", kD},
                 {"ld_called_dur", kD},
                 {"roam_called_dur", kD},
                 {"cm_dur", kD},
                 {"ct_dur", kD},
                 {"busy_call_dur", kD},
                 {"fest_call_dur", kD},
                 {"free_call_dur", kD},
                 {"voice_dur", kD},
                 {"caller_dur", kD},
                 {"all_call_cnt", kD},
                 {"voice_cnt", kD},
                 {"local_base_call_cnt", kD},
                 {"ld_call_cnt", kD},
                 {"roam_call_cnt", kD},
                 {"caller_cnt", kD},
                 {"call_10010_cnt", kD},
                 {"call_10010_manual_cnt", kD},
                 {"sms_p2p_mo_cnt", kD},
                 {"sms_p2p_mt_cnt", kD},
                 {"sms_info_mo_cnt", kD},
                 {"sms_bill_cnt", kD},
                 {"mms_cnt", kD},
                 {"mms_p2p_mt_cnt", kD},
                 {"gprs_all_flux", kD}});
}

Schema BillingSchema() {
  return Schema({{"imsi", kI},
                 {"total_charge", kD},
                 {"balance", kD},
                 {"balance_rate", kD},
                 {"gprs_charge", kD},
                 {"gprs_flux", kD},
                 {"local_call_minutes", kD},
                 {"toll_call_minutes", kD},
                 {"roam_call_minutes", kD},
                 {"voice_call_minutes", kD},
                 {"p2p_sms_mo_cnt", kD},
                 {"p2p_sms_mo_charge", kD},
                 {"gift_voice_call_dur", kD},
                 {"gift_sms_mo_cnt", kD},
                 {"gift_flux_value", kD},
                 {"distinct_serve_count", kD},
                 {"serve_sms_count", kD}});
}

Schema CsSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"call_succ_rate", kD},
                 {"e2e_conn_delay", kD},
                 {"call_drop_rate", kD},
                 {"uplink_mos", kD},
                 {"downlink_mos", kD},
                 {"ip_mos", kD},
                 {"oneway_audio_cnt", kD},
                 {"noise_cnt", kD},
                 {"echo_cnt", kD}});
}

Schema PsSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"page_resp_succ_rate", kD},
                 {"page_resp_delay", kD},
                 {"page_browse_succ_rate", kD},
                 {"page_browse_delay", kD},
                 {"page_download_throughput", kD},
                 {"l4_ul_throughput", kD},
                 {"l4_dw_throughput", kD},
                 {"tcp_rtt", kD},
                 {"tcp_conn_succ_rate", kD},
                 {"streaming_filesize", kD},
                 {"streaming_dw_packets", kD},
                 {"email_succ_rate", kD},
                 {"email_resp_delay", kD},
                 {"pagesize_avg", kD},
                 {"page_succeed_flag_rate", kD}});
}

Schema EdgeSchema() {
  return Schema({{"imsi_a", kI}, {"imsi_b", kI}, {"weight", kD}});
}

Schema TextSchema() {
  return Schema({{"imsi", kI}, {"word_id", kI}, {"cnt", kI}});
}

// Cell tower position on a synthetic grid (used for MR lat/lon).
void CellLatLon(int cell, double* lat, double* lon) {
  *lat = 31.0 + 0.01 * static_cast<double>(cell % 16);
  *lon = 121.2 + 0.01 * static_cast<double>(cell / 16);
}

Status EmitCdr(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  TableBuilder builder(CdrSchema());
  builder.Reserve(pop.active().size() * weeks);
  std::vector<Value> row(31);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    for (int w = 0; w < weeks; ++w) {
      const double e = s.weekly_engagement[w];
      // Weekly voice minutes scale with engagement and voice affinity.
      const double v = 110.0 * e * t.voice_affinity *
                       std::pow(t.arpu_level, 0.3) * rng.LogNormal(0.0, 0.2);
      const double called = v * (0.6 + 0.5 * t.social_activity) *
                            rng.LogNormal(0.0, 0.2);
      const double sms = t.uses_sms
                             ? 8.0 * e * t.social_activity *
                                   rng.LogNormal(0.0, 0.3)
                             : 0.0;
      const double flux = 900.0 * e * t.data_affinity *
                          rng.LogNormal(0.0, 0.3);
      size_t c = 0;
      row[c++] = Value(t.imsi);
      row[c++] = Value(static_cast<int64_t>(w + 1));
      row[c++] = Value(v * 0.38);                          // localbase inner
      row[c++] = Value(v * 0.17);                          // localbase outer
      row[c++] = Value(v * 0.12);                          // long distance
      row[c++] = Value(v * 0.05 * rng.LogNormal(0.0, 0.5));  // roam
      row[c++] = Value(called * 0.55);                     // localbase called
      row[c++] = Value(called * 0.12);                     // ld called
      row[c++] = Value(called * 0.04);                     // roam called
      row[c++] = Value(v * 0.10);                          // to China Mobile
      row[c++] = Value(v * 0.06);                          // to China Telecom
      row[c++] = Value(v * 0.30);                          // busy time
      row[c++] = Value(v * 0.03);                          // festival
      row[c++] = Value(v * 0.08);                          // free
      row[c++] = Value(v);                                 // voice_dur
      row[c++] = Value(v * 0.63);                          // caller_dur
      row[c++] = Value(std::floor(v / 2.4) + 1.0);         // all_call_cnt
      row[c++] = Value(std::floor(v / 2.6));               // voice_cnt
      row[c++] = Value(std::floor(v * 0.55 / 2.5));        // local cnt
      row[c++] = Value(std::floor(v * 0.12 / 3.0));        // ld cnt
      row[c++] = Value(std::floor(v * 0.05 / 3.0));        // roam cnt
      row[c++] = Value(std::floor(v * 0.63 / 2.5));        // caller cnt
      row[c++] = Value(static_cast<double>(rng.Poisson(
          0.10 + 0.9 * s.dissatisfaction)));               // 10010 calls
      row[c++] = Value(static_cast<double>(rng.Poisson(
          0.04 + 0.4 * s.dissatisfaction)));               // manual 10010
      row[c++] = Value(sms);                               // sms mo
      row[c++] = Value(sms * 1.2);                         // sms mt
      row[c++] = Value(sms * 0.15);                        // info sms
      row[c++] = Value(1.0 + std::floor(sms * 0.05));      // billing sms
      row[c++] = Value(sms * 0.08);                        // mms
      row[c++] = Value(sms * 0.09);                        // mms mt
      row[c++] = Value(flux);                              // gprs flux (MB)
      builder.AppendRowUnchecked(row);
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(CdrTableName(month), std::move(table));
  return Status::OK();
}

Status EmitBilling(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  TableBuilder builder(BillingSchema());
  builder.Reserve(pop.active().size());
  std::vector<Value> row(17);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    const double minutes = 420.0 * s.engagement * t.voice_affinity *
                           rng.LogNormal(0.0, 0.15);
    const double flux = 3600.0 * s.engagement * t.data_affinity *
                        rng.LogNormal(0.0, 0.2);
    const double sms = t.uses_sms ? 30.0 * s.engagement * t.social_activity
                                  : 0.0;
    size_t c = 0;
    row[c++] = Value(t.imsi);
    row[c++] = Value(s.recharge_amount);
    row[c++] = Value(s.balance);
    row[c++] = Value(s.recharge_amount / (s.balance + 1.0));
    row[c++] = Value(flux * 0.01 * rng.LogNormal(0.0, 0.2));
    row[c++] = Value(flux);
    row[c++] = Value(minutes * 0.62);
    row[c++] = Value(minutes * 0.23);
    row[c++] = Value(minutes * 0.06 * rng.LogNormal(0.0, 0.6));
    row[c++] = Value(minutes);
    row[c++] = Value(sms);
    row[c++] = Value(sms * 0.1);
    row[c++] = Value(20.0 * (t.product_kind == 1));   // gift voice
    row[c++] = Value(5.0 * (t.product_kind == 2));    // gift sms
    row[c++] = Value(200.0 * (t.product_kind == 3));  // gift flux
    row[c++] = Value(std::floor(2.0 + 4.0 * rng.Uniform()));
    row[c++] = Value(std::floor(6.0 * rng.Uniform()));
    builder.AppendRowUnchecked(row);
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(BillingTableName(month), std::move(table));
  return Status::OK();
}

Status EmitRecharge(const Population& pop, Catalog* catalog) {
  const int month = pop.current_month();
  TableBuilder builder(Schema({{"imsi", kI},
                               {"recharge_day", kI},
                               {"recharge_amount", kD}}));
  builder.Reserve(pop.active().size());
  std::vector<Value> row(3);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    row[0] = Value(t.imsi);
    row[1] = Value(static_cast<int64_t>(s.recharge_day));
    row[2] = Value(s.recharge_day > 0 ? s.recharge_amount : 0.0);
    builder.AppendRowUnchecked(row);
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(RechargeTableName(month), std::move(table));
  return Status::OK();
}

Status EmitComplaints(const Population& pop, const TextGenerator& textgen,
                      Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  TableBuilder counts(Schema({{"imsi", kI}, {"complaint_cnt", kI}}));
  TableBuilder text(TextSchema());
  counts.Reserve(pop.active().size());
  std::vector<Value> crow(2);
  std::vector<Value> trow(3);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    crow[0] = Value(t.imsi);
    crow[1] = Value(static_cast<int64_t>(s.complaints));
    counts.AppendRowUnchecked(crow);
    if (s.complaints > 0) {
      const Document doc = textgen.ComplaintDoc(t, s, &rng);
      for (const auto& [word, cnt] : doc.word_counts) {
        trow[0] = Value(t.imsi);
        trow[1] = Value(static_cast<int64_t>(word));
        trow[2] = Value(static_cast<int64_t>(cnt));
        text.AppendRowUnchecked(trow);
      }
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr counts_table, counts.Finish());
  TELCO_ASSIGN_OR_RETURN(TablePtr text_table, text.Finish());
  catalog->RegisterOrReplace(ComplaintTableName(month),
                             std::move(counts_table));
  catalog->RegisterOrReplace(ComplaintTextTableName(month),
                             std::move(text_table));
  return Status::OK();
}

Status EmitSearchText(const Population& pop, const TextGenerator& textgen,
                      Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  TableBuilder text(TextSchema());
  text.Reserve(pop.active().size() * 6);
  std::vector<Value> row(3);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const Document doc = textgen.SearchDoc(t, pop.state(index), &rng);
    for (const auto& [word, cnt] : doc.word_counts) {
      row[0] = Value(t.imsi);
      row[1] = Value(static_cast<int64_t>(word));
      row[2] = Value(static_cast<int64_t>(cnt));
      text.AppendRowUnchecked(row);
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, text.Finish());
  catalog->RegisterOrReplace(SearchTextTableName(month), std::move(table));
  return Status::OK();
}

Status EmitCs(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  const double noise = pop.config().kpi_noise;
  TableBuilder builder(CsSchema());
  builder.Reserve(pop.active().size() * weeks);
  std::vector<Value> row(11);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    for (int w = 0; w < weeks; ++w) {
      const double q = Clamp(s.cs_quality + rng.Gaussian(0.0, 0.04), 0.05,
                             1.0);
      size_t c = 0;
      row[c++] = Value(t.imsi);
      row[c++] = Value(static_cast<int64_t>(w + 1));
      row[c++] = Value(Clamp(0.86 + 0.135 * q + rng.Gaussian(0.0, 0.01),
                             0.5, 1.0));                     // success rate
      row[c++] = Value(3.0 + 6.5 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // conn delay s
      row[c++] = Value(0.085 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // drop rate
      row[c++] = Value(Clamp(2.4 + 1.9 * q + rng.Gaussian(0.0, 0.12), 1.0,
                             4.5));                           // uplink MOS
      row[c++] = Value(Clamp(2.5 + 1.8 * q + rng.Gaussian(0.0, 0.12), 1.0,
                             4.5));                           // downlink MOS
      row[c++] = Value(Clamp(2.6 + 1.7 * q + rng.Gaussian(0.0, 0.12), 1.0,
                             4.5));                           // IP MOS
      row[c++] = Value(static_cast<double>(
          rng.Poisson(1.4 * (1.0 - q))));                     // one-way audio
      row[c++] = Value(static_cast<double>(
          rng.Poisson(2.2 * (1.0 - q))));                     // noise count
      row[c++] = Value(static_cast<double>(
          rng.Poisson(1.1 * (1.0 - q))));                     // echo count
      builder.AppendRowUnchecked(row);
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(CsKpiTableName(month), std::move(table));
  return Status::OK();
}

Status EmitPs(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  const double noise = pop.config().kpi_noise;
  TableBuilder builder(PsSchema());
  builder.Reserve(pop.active().size() * weeks);
  std::vector<Value> row(17);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    for (int w = 0; w < weeks; ++w) {
      const double q = Clamp(s.ps_quality + rng.Gaussian(0.0, 0.04), 0.05,
                             1.0);
      const double e = s.weekly_engagement[w];
      // Observed throughput mixes network quality with the customer's own
      // activity level — churners "become inactive in data usage", which
      // is what makes this the #2 importance feature (Table 4).
      const double thr = (0.4 + 4.6 * q) * (0.30 + 0.95 * e) *
                         rng.LogNormal(0.0, 0.15);
      size_t c = 0;
      row[c++] = Value(t.imsi);
      row[c++] = Value(static_cast<int64_t>(w + 1));
      row[c++] = Value(Clamp(0.80 + 0.19 * q + rng.Gaussian(0.0, 0.012),
                             0.4, 1.0));                      // resp succ
      row[c++] = Value(0.35 + 3.0 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // resp delay s
      row[c++] = Value(Clamp(0.78 + 0.21 * q + rng.Gaussian(0.0, 0.015),
                             0.35, 1.0));                     // browse succ
      row[c++] = Value(0.9 + 5.0 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // browse delay
      row[c++] = Value(thr);                                  // page dl Mbps
      row[c++] = Value(thr * 0.28 * rng.LogNormal(0.0, 0.1)); // UL thr
      row[c++] = Value(thr * 1.05 * rng.LogNormal(0.0, 0.1)); // DW thr
      row[c++] = Value(35.0 + 280.0 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // TCP RTT ms
      row[c++] = Value(Clamp(0.86 + 0.135 * q + rng.Gaussian(0.0, 0.01),
                             0.5, 1.0));                      // TCP conn
      row[c++] = Value(55.0 * e * t.data_affinity *
                           rng.LogNormal(0.0, 0.4));          // stream MB
      row[c++] = Value(std::floor(4200.0 * e * t.data_affinity *
                                      rng.LogNormal(0.0, 0.4)));  // packets
      row[c++] = Value(Clamp(0.9 + 0.09 * q + rng.Gaussian(0.0, 0.01), 0.5,
                             1.0));                           // email succ
      row[c++] = Value(0.5 + 2.0 * (1.0 - q) *
                           rng.LogNormal(0.0, noise));        // email delay
      row[c++] = Value(310.0 * rng.LogNormal(0.0, 0.25));     // page KB
      row[c++] = Value(Clamp(0.83 + 0.16 * q + rng.Gaussian(0.0, 0.012),
                             0.4, 1.0));                      // succeed flag
      builder.AppendRowUnchecked(row);
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(PsKpiTableName(month), std::move(table));
  return Status::OK();
}

Status EmitMr(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  TableBuilder builder(Schema({{"imsi", kI},
                               {"rank", kI},
                               {"lac", kI},
                               {"ci", kI},
                               {"lat", kD},
                               {"lon", kD},
                               {"cnt", kI}}));
  builder.Reserve(pop.active().size() * 5);
  std::vector<Value> row(7);
  const int num_cells = static_cast<int>(pop.config().num_cells);
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    // Top-5 stay cells: home cell plus nearby cells, visit counts
    // decaying with rank and scaled by engagement.
    for (int r = 1; r <= 5; ++r) {
      const int cell = r == 1 ? t.home_cell
                              : (t.home_cell + r - 1 +
                                 static_cast<int>(rng.UniformInt(3))) %
                                    num_cells;
      double lat;
      double lon;
      CellLatLon(cell, &lat, &lon);
      row[0] = Value(t.imsi);
      row[1] = Value(static_cast<int64_t>(r));
      row[2] = Value(static_cast<int64_t>(100 + cell / 16));
      row[3] = Value(static_cast<int64_t>(cell));
      row[4] = Value(lat + rng.Gaussian(0.0, 0.0005));
      row[5] = Value(lon + rng.Gaussian(0.0, 0.0005));
      row[6] = Value(static_cast<int64_t>(
          1 + rng.Poisson(90.0 * s.engagement / r)));
      builder.AppendRowUnchecked(row);
    }
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(MrTableName(month), std::move(table));
  return Status::OK();
}

// Realised monthly edges from the base ties: an edge appears when both
// endpoints are active this month, with weight scaled by engagement.
Status EmitGraphEdges(const Population& pop, Catalog* catalog, Rng rng) {
  const int month = pop.current_month();
  TableBuilder call(EdgeSchema());
  TableBuilder msg(EdgeSchema());
  TableBuilder cooc(EdgeSchema());
  std::vector<Value> row(3);

  auto emit_edge = [&row](TableBuilder& builder, int64_t a, int64_t b,
                          double w) {
    row[0] = Value(a);
    row[1] = Value(b);
    row[2] = Value(w);
    builder.AppendRowUnchecked(row);
  };

  // Deduplicate pairs: emit each undirected base tie once (lower index
  // first); parallel ties merge when the graph is built.
  for (uint32_t index : pop.active()) {
    const CustomerTraits& t = pop.customers()[index];
    const CustomerMonthState& s = pop.state(index);
    for (uint32_t other : pop.CallTies(index)) {
      if (other <= index || !pop.IsActive(other)) continue;
      if (!rng.Bernoulli(0.85)) continue;  // tie dormant this month
      const CustomerMonthState& so = pop.state(other);
      // Weight depends only weakly on engagement so call-graph PageRank
      // measures social importance, not raw activity.
      const double w = 25.0 *
                       (0.45 + 0.55 * std::min(s.engagement, so.engagement)) *
                       rng.LogNormal(0.0, 0.5);
      if (w > 0.3) {
        emit_edge(call, t.imsi, pop.customers()[other].imsi, w);
      }
    }
    for (uint32_t other : pop.MsgTies(index)) {
      if (other <= index || !pop.IsActive(other)) continue;
      if (!rng.Bernoulli(0.55)) continue;
      const double w = static_cast<double>(1 + rng.Poisson(4.0));
      emit_edge(msg, t.imsi, pop.customers()[other].imsi, w);
    }
  }

  // Co-occurrence: active community members meet in the same
  // spatio-temporal cubes; each member co-occurs with a few others.
  const size_t num_communities = pop.config().num_communities;
  for (size_t comm = 0; comm < num_communities; ++comm) {
    std::vector<uint32_t> members;
    for (uint32_t m : pop.CommunityMembers(static_cast<int>(comm))) {
      if (pop.IsActive(m)) members.push_back(m);
    }
    if (members.size() < 2) continue;
    for (size_t i = 0; i < members.size(); ++i) {
      const int partners =
          std::min<int>(4, static_cast<int>(members.size()) - 1);
      for (int k = 0; k < partners; ++k) {
        const uint32_t other = members[rng.UniformInt(members.size())];
        if (other == members[i]) continue;
        const uint32_t a = std::min(members[i], other);
        const uint32_t b = std::max(members[i], other);
        const double w = static_cast<double>(1 + rng.Poisson(8.0));
        emit_edge(cooc, pop.customers()[a].imsi, pop.customers()[b].imsi, w);
      }
    }
  }

  TELCO_ASSIGN_OR_RETURN(TablePtr call_table, call.Finish());
  TELCO_ASSIGN_OR_RETURN(TablePtr msg_table, msg.Finish());
  TELCO_ASSIGN_OR_RETURN(TablePtr cooc_table, cooc.Finish());
  catalog->RegisterOrReplace(CallEdgesTableName(month), std::move(call_table));
  catalog->RegisterOrReplace(MsgEdgesTableName(month), std::move(msg_table));
  catalog->RegisterOrReplace(CoocEdgesTableName(month), std::move(cooc_table));
  return Status::OK();
}

}  // namespace

Status EmitCustomersTable(const Population& pop, Catalog* catalog) {
  TableBuilder builder(Schema({{"imsi", kI},
                               {"gender", kI},
                               {"age", kI},
                               {"pspt_type", kI},
                               {"is_shanghai", kI},
                               {"town_id", kI},
                               {"sale_id", kI},
                               {"credit_value", kI},
                               {"product_id", kI},
                               {"product_price", kD},
                               {"product_knd", kI},
                               {"innet_month", kI},
                               {"home_cell", kI}}));
  builder.Reserve(pop.customers().size());
  std::vector<Value> row(13);
  for (const CustomerTraits& t : pop.customers()) {
    size_t c = 0;
    row[c++] = Value(t.imsi);
    row[c++] = Value(static_cast<int64_t>(t.gender));
    row[c++] = Value(static_cast<int64_t>(t.age));
    row[c++] = Value(static_cast<int64_t>(t.pspt_type));
    row[c++] = Value(static_cast<int64_t>(t.is_shanghai));
    row[c++] = Value(static_cast<int64_t>(t.town_id));
    row[c++] = Value(static_cast<int64_t>(t.sale_id));
    row[c++] = Value(static_cast<int64_t>(t.credit_value));
    row[c++] = Value(t.product_id);
    row[c++] = Value(t.product_price);
    row[c++] = Value(static_cast<int64_t>(t.product_kind));
    row[c++] = Value(static_cast<int64_t>(t.join_month));
    row[c++] = Value(static_cast<int64_t>(t.home_cell));
    builder.AppendRowUnchecked(row);
  }
  TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
  catalog->RegisterOrReplace(kCustomersTable, std::move(table));
  return Status::OK();
}

Status EmitVocabTables(const TextGenerator& textgen, Catalog* catalog) {
  auto emit = [catalog](const Vocabulary& vocab,
                        const std::string& name) -> Status {
    TableBuilder builder(Schema({{"word_id", kI}, {"word", kS}}));
    builder.Reserve(vocab.size());
    std::vector<Value> row(2);
    for (uint32_t w = 0; w < vocab.size(); ++w) {
      row[0] = Value(static_cast<int64_t>(w));
      row[1] = Value(vocab.WordOf(w));
      builder.AppendRowUnchecked(row);
    }
    TELCO_ASSIGN_OR_RETURN(TablePtr table, builder.Finish());
    catalog->RegisterOrReplace(name, std::move(table));
    return Status::OK();
  };
  TELCO_RETURN_NOT_OK(emit(textgen.complaint_vocab(), kComplaintVocabTable));
  return emit(textgen.search_vocab(), kSearchVocabTable);
}

Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       Catalog* catalog) {
  if (pop.current_month() < 1) {
    return Status::InvalidArgument("no month simulated yet");
  }
  // Independent deterministic substreams per (seed, table family, month).
  const uint64_t m = static_cast<uint64_t>(pop.current_month());
  const uint64_t base = HashCombine64(pop.config().seed, m);
  auto stream = [base](uint64_t family) {
    return Rng(HashCombine64(base, family));
  };
  TELCO_RETURN_NOT_OK(EmitCdr(pop, catalog, stream(1)));
  TELCO_RETURN_NOT_OK(EmitBilling(pop, catalog, stream(2)));
  TELCO_RETURN_NOT_OK(EmitRecharge(pop, catalog));
  TELCO_RETURN_NOT_OK(EmitComplaints(pop, textgen, catalog, stream(3)));
  TELCO_RETURN_NOT_OK(EmitSearchText(pop, textgen, catalog, stream(4)));
  TELCO_RETURN_NOT_OK(EmitCs(pop, catalog, stream(5)));
  TELCO_RETURN_NOT_OK(EmitPs(pop, catalog, stream(6)));
  TELCO_RETURN_NOT_OK(EmitMr(pop, catalog, stream(7)));
  TELCO_RETURN_NOT_OK(EmitGraphEdges(pop, catalog, stream(8)));
  return Status::OK();
}

}  // namespace telco
