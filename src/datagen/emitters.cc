#include "datagen/emitters.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/math_util.h"
#include "common/telemetry/metrics.h"
#include "datagen/table_names.h"

namespace telco {

namespace {

constexpr DataType kI = DataType::kInt64;
constexpr DataType kD = DataType::kDouble;
constexpr DataType kS = DataType::kString;

Schema CdrSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"localbase_inner_call_dur", kD},
                 {"localbase_outer_call_dur", kD},
                 {"ld_call_dur", kD},
                 {"roam_call_dur", kD},
                 {"localbase_called_dur", kD},
                 {"ld_called_dur", kD},
                 {"roam_called_dur", kD},
                 {"cm_dur", kD},
                 {"ct_dur", kD},
                 {"busy_call_dur", kD},
                 {"fest_call_dur", kD},
                 {"free_call_dur", kD},
                 {"voice_dur", kD},
                 {"caller_dur", kD},
                 {"all_call_cnt", kD},
                 {"voice_cnt", kD},
                 {"local_base_call_cnt", kD},
                 {"ld_call_cnt", kD},
                 {"roam_call_cnt", kD},
                 {"caller_cnt", kD},
                 {"call_10010_cnt", kD},
                 {"call_10010_manual_cnt", kD},
                 {"sms_p2p_mo_cnt", kD},
                 {"sms_p2p_mt_cnt", kD},
                 {"sms_info_mo_cnt", kD},
                 {"sms_bill_cnt", kD},
                 {"mms_cnt", kD},
                 {"mms_p2p_mt_cnt", kD},
                 {"gprs_all_flux", kD}});
}

Schema BillingSchema() {
  return Schema({{"imsi", kI},
                 {"total_charge", kD},
                 {"balance", kD},
                 {"balance_rate", kD},
                 {"gprs_charge", kD},
                 {"gprs_flux", kD},
                 {"local_call_minutes", kD},
                 {"toll_call_minutes", kD},
                 {"roam_call_minutes", kD},
                 {"voice_call_minutes", kD},
                 {"p2p_sms_mo_cnt", kD},
                 {"p2p_sms_mo_charge", kD},
                 {"gift_voice_call_dur", kD},
                 {"gift_sms_mo_cnt", kD},
                 {"gift_flux_value", kD},
                 {"distinct_serve_count", kD},
                 {"serve_sms_count", kD}});
}

Schema CsSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"call_succ_rate", kD},
                 {"e2e_conn_delay", kD},
                 {"call_drop_rate", kD},
                 {"uplink_mos", kD},
                 {"downlink_mos", kD},
                 {"ip_mos", kD},
                 {"oneway_audio_cnt", kD},
                 {"noise_cnt", kD},
                 {"echo_cnt", kD}});
}

Schema PsSchema() {
  return Schema({{"imsi", kI},
                 {"week", kI},
                 {"page_resp_succ_rate", kD},
                 {"page_resp_delay", kD},
                 {"page_browse_succ_rate", kD},
                 {"page_browse_delay", kD},
                 {"page_download_throughput", kD},
                 {"l4_ul_throughput", kD},
                 {"l4_dw_throughput", kD},
                 {"tcp_rtt", kD},
                 {"tcp_conn_succ_rate", kD},
                 {"streaming_filesize", kD},
                 {"streaming_dw_packets", kD},
                 {"email_succ_rate", kD},
                 {"email_resp_delay", kD},
                 {"pagesize_avg", kD},
                 {"page_succeed_flag_rate", kD}});
}

Schema EdgeSchema() {
  return Schema({{"imsi_a", kI}, {"imsi_b", kI}, {"weight", kD}});
}

Schema TextSchema() {
  return Schema({{"imsi", kI}, {"word_id", kI}, {"cnt", kI}});
}

// Cell tower position on a synthetic grid (used for MR lat/lon).
void CellLatLon(int cell, double* lat, double* lon) {
  *lat = 31.0 + 0.01 * static_cast<double>(cell % 16);
  *lon = 121.2 + 0.01 * static_cast<double>(cell / 16);
}

std::vector<Column> MakeColumns(const Schema& schema) {
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    cols.emplace_back(schema.field(i).type);
  }
  return cols;
}

void AppendRowTo(std::vector<Column>* cols, const std::vector<Value>& row) {
  for (size_t i = 0; i < row.size(); ++i) (*cols)[i].Append(row[i]);
}

/// A shard generator fills one column set per output writer for items
/// [begin, end), drawing only from the shard's own RNG.
using ShardGenFn =
    std::function<void(size_t begin, size_t end, Rng* rng,
                       std::vector<std::vector<Column>>* out)>;

// Sharded generation driver: splits [0, num_items) into fixed-size
// shards, generates a wave of shards in parallel — each from its own
// deterministic RNG stream Rng(HashCombine64(family_seed, shard)) — then
// splices the wave into the writers in shard order. Peak memory is one
// wave of shard buffers, and the emitted rows do not depend on the
// thread count or on how the sink chunks them.
Status ShardedEmit(size_t num_items, uint64_t family_seed,
                   const EmitOptions& options,
                   const std::vector<ChunkedTableWriter*>& writers,
                   const ShardGenFn& gen) {
  static const Counter rows_emitted =
      MetricsRegistry::Global().GetCounter("datagen.rows_emitted");
  ThreadPool* pool =
      options.pool != nullptr ? options.pool : &ThreadPool::Default();
  const size_t shard_items = std::max<size_t>(1, options.shard_items);
  const size_t num_shards = (num_items + shard_items - 1) / shard_items;
  const size_t wave = std::max<size_t>(1, pool->num_threads());
  std::vector<std::vector<std::vector<Column>>> buffers;
  for (size_t w0 = 0; w0 < num_shards; w0 += wave) {
    const size_t w1 = std::min(num_shards, w0 + wave);
    buffers.assign(w1 - w0, {});
    pool->ParallelFor(w0, w1, [&](size_t shard) {
      const size_t begin = shard * shard_items;
      const size_t end = std::min(num_items, begin + shard_items);
      Rng rng(HashCombine64(family_seed, shard));
      std::vector<std::vector<Column>> out(writers.size());
      for (size_t t = 0; t < writers.size(); ++t) {
        out[t] = MakeColumns(writers[t]->schema());
      }
      gen(begin, end, &rng, &out);
      buffers[shard - w0] = std::move(out);
    });
    for (auto& shard_out : buffers) {
      for (size_t t = 0; t < writers.size(); ++t) {
        const size_t rows = shard_out[t].empty() ? 0 : shard_out[t][0].size();
        TELCO_RETURN_NOT_OK(writers[t]->AppendColumns(shard_out[t]));
        rows_emitted.Add(rows);
      }
      shard_out.clear();
    }
  }
  return Status::OK();
}

Status EmitCdr(const Population& pop, WarehouseSink* sink,
               uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  TELCO_ASSIGN_OR_RETURN(auto writer,
                         sink->CreateTable(CdrTableName(month), CdrSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve((end - begin) * weeks);
        std::vector<Value> row(31);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          for (int w = 0; w < weeks; ++w) {
            const double e = s.weekly_engagement[w];
            // Weekly voice minutes scale with engagement and voice
            // affinity.
            const double v = 110.0 * e * t.voice_affinity *
                             std::pow(t.arpu_level, 0.3) *
                             rng.LogNormal(0.0, 0.2);
            const double called = v * (0.6 + 0.5 * t.social_activity) *
                                  rng.LogNormal(0.0, 0.2);
            const double sms = t.uses_sms
                                   ? 8.0 * e * t.social_activity *
                                         rng.LogNormal(0.0, 0.3)
                                   : 0.0;
            const double flux = 900.0 * e * t.data_affinity *
                                rng.LogNormal(0.0, 0.3);
            size_t c = 0;
            row[c++] = Value(t.imsi);
            row[c++] = Value(static_cast<int64_t>(w + 1));
            row[c++] = Value(v * 0.38);                          // localbase inner
            row[c++] = Value(v * 0.17);                          // localbase outer
            row[c++] = Value(v * 0.12);                          // long distance
            row[c++] = Value(v * 0.05 * rng.LogNormal(0.0, 0.5));  // roam
            row[c++] = Value(called * 0.55);                     // localbase called
            row[c++] = Value(called * 0.12);                     // ld called
            row[c++] = Value(called * 0.04);                     // roam called
            row[c++] = Value(v * 0.10);                          // to China Mobile
            row[c++] = Value(v * 0.06);                          // to China Telecom
            row[c++] = Value(v * 0.30);                          // busy time
            row[c++] = Value(v * 0.03);                          // festival
            row[c++] = Value(v * 0.08);                          // free
            row[c++] = Value(v);                                 // voice_dur
            row[c++] = Value(v * 0.63);                          // caller_dur
            row[c++] = Value(std::floor(v / 2.4) + 1.0);         // all_call_cnt
            row[c++] = Value(std::floor(v / 2.6));               // voice_cnt
            row[c++] = Value(std::floor(v * 0.55 / 2.5));        // local cnt
            row[c++] = Value(std::floor(v * 0.12 / 3.0));        // ld cnt
            row[c++] = Value(std::floor(v * 0.05 / 3.0));        // roam cnt
            row[c++] = Value(std::floor(v * 0.63 / 2.5));        // caller cnt
            row[c++] = Value(static_cast<double>(rng.Poisson(
                0.10 + 0.9 * s.dissatisfaction)));               // 10010 calls
            row[c++] = Value(static_cast<double>(rng.Poisson(
                0.04 + 0.4 * s.dissatisfaction)));               // manual 10010
            row[c++] = Value(sms);                               // sms mo
            row[c++] = Value(sms * 1.2);                         // sms mt
            row[c++] = Value(sms * 0.15);                        // info sms
            row[c++] = Value(1.0 + std::floor(sms * 0.05));      // billing sms
            row[c++] = Value(sms * 0.08);                        // mms
            row[c++] = Value(sms * 0.09);                        // mms mt
            row[c++] = Value(flux);                              // gprs flux (MB)
            AppendRowTo(&cols, row);
          }
        }
      }));
  return writer->Finish();
}

Status EmitBilling(const Population& pop, WarehouseSink* sink,
                   uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto writer, sink->CreateTable(BillingTableName(month), BillingSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve(end - begin);
        std::vector<Value> row(17);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          const double minutes = 420.0 * s.engagement * t.voice_affinity *
                                 rng.LogNormal(0.0, 0.15);
          const double flux = 3600.0 * s.engagement * t.data_affinity *
                              rng.LogNormal(0.0, 0.2);
          const double sms =
              t.uses_sms ? 30.0 * s.engagement * t.social_activity : 0.0;
          size_t c = 0;
          row[c++] = Value(t.imsi);
          row[c++] = Value(s.recharge_amount);
          row[c++] = Value(s.balance);
          row[c++] = Value(s.recharge_amount / (s.balance + 1.0));
          row[c++] = Value(flux * 0.01 * rng.LogNormal(0.0, 0.2));
          row[c++] = Value(flux);
          row[c++] = Value(minutes * 0.62);
          row[c++] = Value(minutes * 0.23);
          row[c++] = Value(minutes * 0.06 * rng.LogNormal(0.0, 0.6));
          row[c++] = Value(minutes);
          row[c++] = Value(sms);
          row[c++] = Value(sms * 0.1);
          row[c++] = Value(20.0 * (t.product_kind == 1));   // gift voice
          row[c++] = Value(5.0 * (t.product_kind == 2));    // gift sms
          row[c++] = Value(200.0 * (t.product_kind == 3));  // gift flux
          row[c++] = Value(std::floor(2.0 + 4.0 * rng.Uniform()));
          row[c++] = Value(std::floor(6.0 * rng.Uniform()));
          AppendRowTo(&cols, row);
        }
      }));
  return writer->Finish();
}

Status EmitRecharge(const Population& pop, WarehouseSink* sink,
                    const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto writer,
      sink->CreateTable(RechargeTableName(month),
                        Schema({{"imsi", kI},
                                {"recharge_day", kI},
                                {"recharge_amount", kD}})));
  // No RNG in this family; the shard seed is unused.
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), 0, options, {writer.get()},
      [&](size_t begin, size_t end, Rng*,
          std::vector<std::vector<Column>>* out) {
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve(end - begin);
        std::vector<Value> row(3);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          row[0] = Value(t.imsi);
          row[1] = Value(static_cast<int64_t>(s.recharge_day));
          row[2] = Value(s.recharge_day > 0 ? s.recharge_amount : 0.0);
          AppendRowTo(&cols, row);
        }
      }));
  return writer->Finish();
}

Status EmitComplaints(const Population& pop, const TextGenerator& textgen,
                      WarehouseSink* sink, uint64_t family_seed,
                      const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto counts,
      sink->CreateTable(ComplaintTableName(month),
                        Schema({{"imsi", kI}, {"complaint_cnt", kI}})));
  TELCO_ASSIGN_OR_RETURN(
      auto text, sink->CreateTable(ComplaintTextTableName(month),
                                   TextSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {counts.get(), text.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& ccols = (*out)[0];
        std::vector<Column>& tcols = (*out)[1];
        for (Column& col : ccols) col.Reserve(end - begin);
        std::vector<Value> crow(2);
        std::vector<Value> trow(3);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          crow[0] = Value(t.imsi);
          crow[1] = Value(static_cast<int64_t>(s.complaints));
          AppendRowTo(&ccols, crow);
          if (s.complaints > 0) {
            const Document doc = textgen.ComplaintDoc(t, s, &rng);
            for (const auto& [word, cnt] : doc.word_counts) {
              trow[0] = Value(t.imsi);
              trow[1] = Value(static_cast<int64_t>(word));
              trow[2] = Value(static_cast<int64_t>(cnt));
              AppendRowTo(&tcols, trow);
            }
          }
        }
      }));
  TELCO_RETURN_NOT_OK(counts->Finish());
  return text->Finish();
}

Status EmitSearchText(const Population& pop, const TextGenerator& textgen,
                      WarehouseSink* sink, uint64_t family_seed,
                      const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto writer,
      sink->CreateTable(SearchTextTableName(month), TextSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve((end - begin) * 6);
        std::vector<Value> row(3);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const Document doc = textgen.SearchDoc(t, pop.state(index), &rng);
          for (const auto& [word, cnt] : doc.word_counts) {
            row[0] = Value(t.imsi);
            row[1] = Value(static_cast<int64_t>(word));
            row[2] = Value(static_cast<int64_t>(cnt));
            AppendRowTo(&cols, row);
          }
        }
      }));
  return writer->Finish();
}

Status EmitCs(const Population& pop, WarehouseSink* sink,
              uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  const double noise = pop.config().kpi_noise;
  TELCO_ASSIGN_OR_RETURN(
      auto writer, sink->CreateTable(CsKpiTableName(month), CsSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve((end - begin) * weeks);
        std::vector<Value> row(11);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          for (int w = 0; w < weeks; ++w) {
            const double q =
                Clamp(s.cs_quality + rng.Gaussian(0.0, 0.04), 0.05, 1.0);
            size_t c = 0;
            row[c++] = Value(t.imsi);
            row[c++] = Value(static_cast<int64_t>(w + 1));
            row[c++] = Value(Clamp(0.86 + 0.135 * q + rng.Gaussian(0.0, 0.01),
                                   0.5, 1.0));                     // success rate
            row[c++] = Value(3.0 + 6.5 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // conn delay s
            row[c++] = Value(0.085 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // drop rate
            row[c++] = Value(Clamp(2.4 + 1.9 * q + rng.Gaussian(0.0, 0.12),
                                   1.0, 4.5));                      // uplink MOS
            row[c++] = Value(Clamp(2.5 + 1.8 * q + rng.Gaussian(0.0, 0.12),
                                   1.0, 4.5));                      // downlink MOS
            row[c++] = Value(Clamp(2.6 + 1.7 * q + rng.Gaussian(0.0, 0.12),
                                   1.0, 4.5));                      // IP MOS
            row[c++] = Value(static_cast<double>(
                rng.Poisson(1.4 * (1.0 - q))));                     // one-way audio
            row[c++] = Value(static_cast<double>(
                rng.Poisson(2.2 * (1.0 - q))));                     // noise count
            row[c++] = Value(static_cast<double>(
                rng.Poisson(1.1 * (1.0 - q))));                     // echo count
            AppendRowTo(&cols, row);
          }
        }
      }));
  return writer->Finish();
}

Status EmitPs(const Population& pop, WarehouseSink* sink,
              uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  const int weeks = pop.config().weeks_per_month;
  const double noise = pop.config().kpi_noise;
  TELCO_ASSIGN_OR_RETURN(
      auto writer, sink->CreateTable(PsKpiTableName(month), PsSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve((end - begin) * weeks);
        std::vector<Value> row(17);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          for (int w = 0; w < weeks; ++w) {
            const double q =
                Clamp(s.ps_quality + rng.Gaussian(0.0, 0.04), 0.05, 1.0);
            const double e = s.weekly_engagement[w];
            // Observed throughput mixes network quality with the
            // customer's own activity level — churners "become inactive
            // in data usage", which is what makes this the #2 importance
            // feature (Table 4).
            const double thr = (0.4 + 4.6 * q) * (0.30 + 0.95 * e) *
                               rng.LogNormal(0.0, 0.15);
            size_t c = 0;
            row[c++] = Value(t.imsi);
            row[c++] = Value(static_cast<int64_t>(w + 1));
            row[c++] = Value(Clamp(0.80 + 0.19 * q + rng.Gaussian(0.0, 0.012),
                                   0.4, 1.0));                      // resp succ
            row[c++] = Value(0.35 + 3.0 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // resp delay s
            row[c++] = Value(Clamp(0.78 + 0.21 * q + rng.Gaussian(0.0, 0.015),
                                   0.35, 1.0));                     // browse succ
            row[c++] = Value(0.9 + 5.0 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // browse delay
            row[c++] = Value(thr);                                  // page dl Mbps
            row[c++] = Value(thr * 0.28 * rng.LogNormal(0.0, 0.1)); // UL thr
            row[c++] = Value(thr * 1.05 * rng.LogNormal(0.0, 0.1)); // DW thr
            row[c++] = Value(35.0 + 280.0 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // TCP RTT ms
            row[c++] = Value(Clamp(0.86 + 0.135 * q + rng.Gaussian(0.0, 0.01),
                                   0.5, 1.0));                      // TCP conn
            row[c++] = Value(55.0 * e * t.data_affinity *
                                 rng.LogNormal(0.0, 0.4));          // stream MB
            row[c++] = Value(std::floor(4200.0 * e * t.data_affinity *
                                            rng.LogNormal(0.0, 0.4)));  // packets
            row[c++] = Value(Clamp(0.9 + 0.09 * q + rng.Gaussian(0.0, 0.01),
                                   0.5, 1.0));                      // email succ
            row[c++] = Value(0.5 + 2.0 * (1.0 - q) *
                                 rng.LogNormal(0.0, noise));        // email delay
            row[c++] = Value(310.0 * rng.LogNormal(0.0, 0.25));     // page KB
            row[c++] = Value(Clamp(0.83 + 0.16 * q + rng.Gaussian(0.0, 0.012),
                                   0.4, 1.0));                      // succeed flag
            AppendRowTo(&cols, row);
          }
        }
      }));
  return writer->Finish();
}

Status EmitMr(const Population& pop, WarehouseSink* sink,
              uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  const int num_cells = static_cast<int>(pop.config().num_cells);
  TELCO_ASSIGN_OR_RETURN(
      auto writer, sink->CreateTable(MrTableName(month),
                                     Schema({{"imsi", kI},
                                             {"rank", kI},
                                             {"lac", kI},
                                             {"ci", kI},
                                             {"lat", kD},
                                             {"lon", kD},
                                             {"cnt", kI}})));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {writer.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        for (Column& col : cols) col.Reserve((end - begin) * 5);
        std::vector<Value> row(7);
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          // Top-5 stay cells: home cell plus nearby cells, visit counts
          // decaying with rank and scaled by engagement.
          for (int r = 1; r <= 5; ++r) {
            const int cell = r == 1 ? t.home_cell
                                    : (t.home_cell + r - 1 +
                                       static_cast<int>(rng.UniformInt(3))) %
                                          num_cells;
            double lat;
            double lon;
            CellLatLon(cell, &lat, &lon);
            row[0] = Value(t.imsi);
            row[1] = Value(static_cast<int64_t>(r));
            row[2] = Value(static_cast<int64_t>(100 + cell / 16));
            row[3] = Value(static_cast<int64_t>(cell));
            row[4] = Value(lat + rng.Gaussian(0.0, 0.0005));
            row[5] = Value(lon + rng.Gaussian(0.0, 0.0005));
            row[6] = Value(static_cast<int64_t>(
                1 + rng.Poisson(90.0 * s.engagement / r)));
            AppendRowTo(&cols, row);
          }
        }
      }));
  return writer->Finish();
}

// Realised monthly call/msg edges from the base ties: an edge appears
// when both endpoints are active this month, with weight scaled by
// engagement.
Status EmitGraphTies(const Population& pop, WarehouseSink* sink,
                     uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto call, sink->CreateTable(CallEdgesTableName(month), EdgeSchema()));
  TELCO_ASSIGN_OR_RETURN(
      auto msg, sink->CreateTable(MsgEdgesTableName(month), EdgeSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.active().size(), family_seed, options, {call.get(), msg.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& call_cols = (*out)[0];
        std::vector<Column>& msg_cols = (*out)[1];
        std::vector<Value> row(3);
        auto emit_edge = [&row](std::vector<Column>* cols, int64_t a,
                                int64_t b, double w) {
          row[0] = Value(a);
          row[1] = Value(b);
          row[2] = Value(w);
          AppendRowTo(cols, row);
        };
        // Deduplicate pairs: emit each undirected base tie once (lower
        // index first); parallel ties merge when the graph is built.
        for (size_t i = begin; i < end; ++i) {
          const uint32_t index = pop.active()[i];
          const CustomerTraits& t = pop.customers()[index];
          const CustomerMonthState& s = pop.state(index);
          for (uint32_t other : pop.CallTies(index)) {
            if (other <= index || !pop.IsActive(other)) continue;
            if (!rng.Bernoulli(0.85)) continue;  // tie dormant this month
            const CustomerMonthState& so = pop.state(other);
            // Weight depends only weakly on engagement so call-graph
            // PageRank measures social importance, not raw activity.
            const double w =
                25.0 *
                (0.45 + 0.55 * std::min(s.engagement, so.engagement)) *
                rng.LogNormal(0.0, 0.5);
            if (w > 0.3) {
              emit_edge(&call_cols, t.imsi, pop.customers()[other].imsi, w);
            }
          }
          for (uint32_t other : pop.MsgTies(index)) {
            if (other <= index || !pop.IsActive(other)) continue;
            if (!rng.Bernoulli(0.55)) continue;
            const double w = static_cast<double>(1 + rng.Poisson(4.0));
            emit_edge(&msg_cols, t.imsi, pop.customers()[other].imsi, w);
          }
        }
      }));
  TELCO_RETURN_NOT_OK(call->Finish());
  return msg->Finish();
}

// Co-occurrence: active community members meet in the same
// spatio-temporal cubes; each member co-occurs with a few others.
// Sharded over communities — a community's edges come from one shard.
Status EmitGraphCooc(const Population& pop, WarehouseSink* sink,
                     uint64_t family_seed, const EmitOptions& options) {
  const int month = pop.current_month();
  TELCO_ASSIGN_OR_RETURN(
      auto cooc, sink->CreateTable(CoocEdgesTableName(month), EdgeSchema()));
  TELCO_RETURN_NOT_OK(ShardedEmit(
      pop.config().num_communities, family_seed, options, {cooc.get()},
      [&](size_t begin, size_t end, Rng* rng_ptr,
          std::vector<std::vector<Column>>* out) {
        Rng& rng = *rng_ptr;
        std::vector<Column>& cols = (*out)[0];
        std::vector<Value> row(3);
        std::vector<uint32_t> members;
        for (size_t comm = begin; comm < end; ++comm) {
          members.clear();
          for (uint32_t m : pop.CommunityMembers(static_cast<int>(comm))) {
            if (pop.IsActive(m)) members.push_back(m);
          }
          if (members.size() < 2) continue;
          for (size_t i = 0; i < members.size(); ++i) {
            const int partners =
                std::min<int>(4, static_cast<int>(members.size()) - 1);
            for (int k = 0; k < partners; ++k) {
              const uint32_t other = members[rng.UniformInt(members.size())];
              if (other == members[i]) continue;
              const uint32_t a = std::min(members[i], other);
              const uint32_t b = std::max(members[i], other);
              const double w = static_cast<double>(1 + rng.Poisson(8.0));
              row[0] = Value(pop.customers()[a].imsi);
              row[1] = Value(pop.customers()[b].imsi);
              row[2] = Value(w);
              AppendRowTo(&cols, row);
            }
          }
        }
      }));
  return cooc->Finish();
}

}  // namespace

Status EmitCustomersTable(const Population& pop, WarehouseSink* sink) {
  static const Counter rows_emitted =
      MetricsRegistry::Global().GetCounter("datagen.rows_emitted");
  TELCO_ASSIGN_OR_RETURN(
      auto writer, sink->CreateTable(kCustomersTable,
                                     Schema({{"imsi", kI},
                                             {"gender", kI},
                                             {"age", kI},
                                             {"pspt_type", kI},
                                             {"is_shanghai", kI},
                                             {"town_id", kI},
                                             {"sale_id", kI},
                                             {"credit_value", kI},
                                             {"product_id", kI},
                                             {"product_price", kD},
                                             {"product_knd", kI},
                                             {"innet_month", kI},
                                             {"home_cell", kI}})));
  std::vector<Value> row(13);
  for (const CustomerTraits& t : pop.customers()) {
    size_t c = 0;
    row[c++] = Value(t.imsi);
    row[c++] = Value(static_cast<int64_t>(t.gender));
    row[c++] = Value(static_cast<int64_t>(t.age));
    row[c++] = Value(static_cast<int64_t>(t.pspt_type));
    row[c++] = Value(static_cast<int64_t>(t.is_shanghai));
    row[c++] = Value(static_cast<int64_t>(t.town_id));
    row[c++] = Value(static_cast<int64_t>(t.sale_id));
    row[c++] = Value(static_cast<int64_t>(t.credit_value));
    row[c++] = Value(t.product_id);
    row[c++] = Value(t.product_price);
    row[c++] = Value(static_cast<int64_t>(t.product_kind));
    row[c++] = Value(static_cast<int64_t>(t.join_month));
    row[c++] = Value(static_cast<int64_t>(t.home_cell));
    TELCO_RETURN_NOT_OK(writer->AppendRowUnchecked(row));
  }
  rows_emitted.Add(pop.customers().size());
  return writer->Finish();
}

Status EmitCustomersTable(const Population& pop, Catalog* catalog) {
  CatalogWarehouseSink sink(catalog);
  return EmitCustomersTable(pop, &sink);
}

Status EmitVocabTables(const TextGenerator& textgen, WarehouseSink* sink) {
  static const Counter rows_emitted =
      MetricsRegistry::Global().GetCounter("datagen.rows_emitted");
  auto emit = [sink](const Vocabulary& vocab,
                     const std::string& name) -> Status {
    TELCO_ASSIGN_OR_RETURN(
        auto writer,
        sink->CreateTable(name, Schema({{"word_id", kI}, {"word", kS}})));
    std::vector<Value> row(2);
    for (uint32_t w = 0; w < vocab.size(); ++w) {
      row[0] = Value(static_cast<int64_t>(w));
      row[1] = Value(vocab.WordOf(w));
      TELCO_RETURN_NOT_OK(writer->AppendRowUnchecked(row));
    }
    rows_emitted.Add(vocab.size());
    return writer->Finish();
  };
  TELCO_RETURN_NOT_OK(emit(textgen.complaint_vocab(), kComplaintVocabTable));
  return emit(textgen.search_vocab(), kSearchVocabTable);
}

Status EmitVocabTables(const TextGenerator& textgen, Catalog* catalog) {
  CatalogWarehouseSink sink(catalog);
  return EmitVocabTables(textgen, &sink);
}

Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       WarehouseSink* sink, const EmitOptions& options) {
  if (pop.current_month() < 1) {
    return Status::InvalidArgument("no month simulated yet");
  }
  // Independent deterministic substreams per (seed, month, table family);
  // ShardedEmit forks one stream per shard below these.
  const uint64_t m = static_cast<uint64_t>(pop.current_month());
  const uint64_t base = HashCombine64(pop.config().seed, m);
  auto family = [base](uint64_t f) { return HashCombine64(base, f); };
  TELCO_RETURN_NOT_OK(EmitCdr(pop, sink, family(1), options));
  TELCO_RETURN_NOT_OK(EmitBilling(pop, sink, family(2), options));
  TELCO_RETURN_NOT_OK(EmitRecharge(pop, sink, options));
  TELCO_RETURN_NOT_OK(EmitComplaints(pop, textgen, sink, family(3), options));
  TELCO_RETURN_NOT_OK(EmitSearchText(pop, textgen, sink, family(4), options));
  TELCO_RETURN_NOT_OK(EmitCs(pop, sink, family(5), options));
  TELCO_RETURN_NOT_OK(EmitPs(pop, sink, family(6), options));
  TELCO_RETURN_NOT_OK(EmitMr(pop, sink, family(7), options));
  TELCO_RETURN_NOT_OK(EmitGraphTies(pop, sink, family(8), options));
  return EmitGraphCooc(pop, sink, family(9), options);
}

Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       Catalog* catalog) {
  CatalogWarehouseSink sink(catalog);
  return EmitMonthTables(pop, textgen, &sink);
}

}  // namespace telco
