// Population: the stochastic prepaid-customer process at the core of the
// simulator. Owns traits, the base social graph, per-cell network quality
// and the month-by-month latent dynamics (intent formation -> churn ->
// replacement). Emitters translate its state into warehouse tables.

#ifndef TELCO_DATAGEN_POPULATION_H_
#define TELCO_DATAGEN_POPULATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "datagen/customer.h"
#include "datagen/sim_config.h"

namespace telco {

/// \brief The simulated customer base, advanced one month at a time.
///
/// Customer identity: customers are indexed densely (0-based) in join
/// order; `imsi = 460000000000 + index`. Churned customers stay in the
/// trait arrays but leave the active set; each month spawns roughly as
/// many joiners as leavers (Table 1's "dynamic balance").
class Population {
 public:
  explicit Population(const SimConfig& config);

  /// Advances the simulation one month: realises every active customer's
  /// monthly state, draws churn, then replaces churners with joiners.
  void AdvanceMonth();

  /// 1-based month index of the most recent AdvanceMonth (0 = none yet).
  int current_month() const { return month_; }

  const SimConfig& config() const { return config_; }

  /// All customers ever created (index = join order).
  const std::vector<CustomerTraits>& customers() const { return traits_; }

  /// Indices of customers active in the current month (includes those who
  /// churn at its end — they were active while generating usage; excludes
  /// this month's joiners, who become active next month).
  const std::vector<uint32_t>& active() const { return active_; }

  /// Current-month state of a customer. Precondition: active this month.
  const CustomerMonthState& state(uint32_t index) const {
    return states_[index];
  }

  /// True iff the customer is in the current month's active snapshot.
  bool IsActive(uint32_t index) const {
    return index < active_flag_.size() && active_flag_[index] != 0;
  }

  /// Base call ties (symmetric adjacency over customer indices).
  const std::vector<uint32_t>& CallTies(uint32_t index) const {
    return call_ties_[index];
  }
  /// Base message ties (subset of customers who use SMS).
  const std::vector<uint32_t>& MsgTies(uint32_t index) const {
    return msg_ties_[index];
  }
  /// Members of a community (may contain inactive customers; filter).
  const std::vector<uint32_t>& CommunityMembers(int community) const {
    return community_members_[community];
  }

  /// Persistent base quality of a cell, in (0, 1].
  double CellPsQuality(int cell) const { return cell_ps_quality_[cell]; }
  double CellCsQuality(int cell) const { return cell_cs_quality_[cell]; }

  /// The month-specific drift multiplier applied to intent_base (exposes
  /// the non-stationarity used by the Volume experiment).
  double MonthDrift(int month) const;

  /// RNG substream for emitters (deterministic per (seed, purpose)).
  Rng ForkRng(uint64_t stream_id) { return rng_.Fork(stream_id); }

 private:
  uint32_t SpawnCustomer(int join_month);
  /// Joiners mostly take over the market niche (community + home cell) of
  /// recent leavers, keeping the population's risk mix stationary.
  std::vector<std::pair<int, int>> leaver_slots_;
  void BuildTiesFor(uint32_t index);
  double NeighborChurnFraction(uint32_t index) const;

  SimConfig config_;
  Rng rng_;
  int month_ = 0;

  std::vector<CustomerTraits> traits_;
  std::vector<CustomerMonthState> states_;   // parallel to traits_
  std::vector<uint32_t> pool_;               // customers entering next month
  std::vector<uint32_t> active_;             // snapshot for current month
  std::vector<uint8_t> active_flag_;         // parallel to traits_

  std::vector<std::vector<uint32_t>> call_ties_;
  std::vector<std::vector<uint32_t>> msg_ties_;
  std::vector<std::vector<uint32_t>> community_members_;

  std::vector<double> cell_ps_quality_;
  std::vector<double> cell_cs_quality_;

  /// Churn flags of the previous month (contagion input).
  std::vector<uint8_t> churned_last_month_;

  /// Persistent community shock state (on/off per community).
  std::vector<uint8_t> community_shock_;
};

}  // namespace telco

#endif  // TELCO_DATAGEN_POPULATION_H_
