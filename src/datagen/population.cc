#include "datagen/population.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace telco {

namespace {
constexpr int64_t kImsiBase = 460000000000LL;
}  // namespace

const char* OfferKindToString(OfferKind kind) {
  switch (kind) {
    case OfferKind::kNone:
      return "NoOffer";
    case OfferKind::kCashback100:
      return "Cashback100on100";
    case OfferKind::kCashback50:
      return "Cashback50on100";
    case OfferKind::kFlux500M:
      return "Flux500MBon50";
    case OfferKind::kVoice200Min:
      return "Voice200Minon50";
  }
  return "Unknown";
}

Population::Population(const SimConfig& config)
    : config_(config), rng_(config.seed) {
  TELCO_CHECK(config_.num_customers > 0);
  TELCO_CHECK(config_.num_communities > 0);
  TELCO_CHECK(config_.num_cells > 0);

  // Persistent cell quality: most cells are fine, a tail is congested.
  cell_ps_quality_.resize(config_.num_cells);
  cell_cs_quality_.resize(config_.num_cells);
  for (size_t c = 0; c < config_.num_cells; ++c) {
    cell_ps_quality_[c] = Clamp(0.30 + 0.65 * rng_.Beta(2.2, 1.2), 0.1, 1.0);
    cell_cs_quality_[c] = Clamp(0.40 + 0.58 * rng_.Beta(2.2, 1.2), 0.15, 1.0);
  }
  community_members_.resize(config_.num_communities);
  community_shock_.assign(config_.num_communities, 0);

  traits_.reserve(config_.num_customers * 2);
  states_.reserve(config_.num_customers * 2);
  const int pre_history = -11;  // join months spread over the past year
  for (size_t i = 0; i < config_.num_customers; ++i) {
    const int join = static_cast<int>(rng_.UniformInt(
                         static_cast<int64_t>(pre_history), 0));
    SpawnCustomer(join);
  }
  // Ties are built after the initial population exists so early joiners
  // can connect to everyone.
  for (uint32_t i = 0; i < traits_.size(); ++i) BuildTiesFor(i);
}

uint32_t Population::SpawnCustomer(int join_month) {
  const uint32_t index = static_cast<uint32_t>(traits_.size());
  CustomerTraits t;
  t.imsi = kImsiBase + static_cast<int64_t>(index);
  t.gender = rng_.Bernoulli(0.52) ? 1 : 0;
  t.age = static_cast<int>(Clamp(std::lround(rng_.Gaussian(33, 11)), 16, 80));
  t.pspt_type = static_cast<int>(rng_.UniformInt(3));
  t.is_shanghai = rng_.Bernoulli(0.22) ? 1 : 0;
  t.town_id = static_cast<int>(rng_.UniformInt(config_.num_towns));
  t.sale_id = static_cast<int>(rng_.UniformInt(config_.num_sale_areas));
  t.credit_value =
      static_cast<int>(Clamp(std::lround(rng_.Gaussian(62, 15)), 10, 100));
  t.product_id = 1000 + static_cast<int64_t>(rng_.UniformInt(
                            static_cast<uint64_t>(config_.num_products)));
  t.product_kind = static_cast<int>(t.product_id % 4);
  t.product_price = 18.0 + 12.0 * static_cast<double>(t.product_id % 5);
  // Joiners mostly fill the market niche of recent leavers (a new student
  // joins the same campus; a new resident moves under the same tower), so
  // the population's risk composition stays stationary across months.
  if (!leaver_slots_.empty() && rng_.Bernoulli(0.8)) {
    const auto& slot = leaver_slots_[rng_.UniformInt(leaver_slots_.size())];
    t.community = slot.first;
    t.home_cell = slot.second;
  } else {
    t.community =
        static_cast<int>(rng_.UniformInt(config_.num_communities));
    // Communities are geographically clustered: most members live under
    // the community's home cell, so co-occurrence neighbourhoods share
    // network quality ("customers in the same spatiotemporal cube tend to
    // churn with similar likelihoods").
    if (rng_.Bernoulli(0.85)) {
      t.home_cell = static_cast<int>(static_cast<size_t>(t.community) %
                                     config_.num_cells);
    } else {
      t.home_cell = static_cast<int>(rng_.UniformInt(config_.num_cells));
    }
  }
  t.join_month = join_month;
  t.arpu_level = rng_.LogNormal(0.0, 0.45);
  t.data_affinity = rng_.Beta(2.0, 2.0);
  t.voice_affinity = Clamp(1.1 - t.data_affinity + rng_.Gaussian(0.0, 0.15),
                           0.05, 1.0);
  t.social_activity = rng_.LogNormal(0.0, 0.4);
  t.base_engagement = Clamp(0.45 + 0.45 * rng_.Beta(2.2, 1.6), 0.2, 1.0);
  t.balance_scale = Clamp(t.arpu_level * rng_.LogNormal(0.0, 0.3), 0.2, 6.0);
  t.uses_sms = rng_.Bernoulli(config_.sms_user_fraction);

  // Latent offer affinity is a (noisy) function of observable behaviour so
  // the retention classifier can learn it: heavy data users want flux,
  // voice-centric users want minutes, low-ARPU users want big cashback,
  // mid users small cashback, and some accept nothing.
  const double u = rng_.Uniform();
  if (u < 0.22) {
    t.offer_affinity = OfferKind::kNone;
  } else if (t.data_affinity > 0.62) {
    t.offer_affinity = OfferKind::kFlux500M;
  } else if (t.voice_affinity > 0.68) {
    t.offer_affinity = OfferKind::kVoice200Min;
  } else if (t.arpu_level < 0.85) {
    t.offer_affinity = OfferKind::kCashback100;
  } else {
    t.offer_affinity = OfferKind::kCashback50;
  }

  traits_.push_back(t);
  CustomerMonthState init;
  init.engagement = t.base_engagement;
  init.balance = 40.0 * t.balance_scale;
  states_.push_back(std::move(init));
  pool_.push_back(index);
  active_flag_.push_back(0);
  community_members_[t.community].push_back(index);
  call_ties_.emplace_back();
  msg_ties_.emplace_back();
  churned_last_month_.push_back(0);
  return index;
}

void Population::BuildTiesFor(uint32_t index) {
  const CustomerTraits& t = traits_[index];
  const int degree = std::max(
      1, rng_.Poisson(config_.mean_call_degree * t.social_activity));
  const auto& own_community = community_members_[t.community];
  for (int k = 0; k < degree; ++k) {
    uint32_t other;
    if (rng_.Bernoulli(config_.community_tie_fraction) &&
        own_community.size() > 1) {
      other = own_community[rng_.UniformInt(own_community.size())];
    } else {
      other = static_cast<uint32_t>(rng_.UniformInt(traits_.size()));
    }
    if (other == index) continue;
    // Parallel ties are tolerated; emitters merge weights.
    call_ties_[index].push_back(other);
    call_ties_[other].push_back(index);
    if (t.uses_sms && traits_[other].uses_sms && rng_.Bernoulli(0.5)) {
      msg_ties_[index].push_back(other);
      msg_ties_[other].push_back(index);
    }
  }
}

double Population::NeighborChurnFraction(uint32_t index) const {
  const auto& ties = call_ties_[index];
  if (ties.empty()) return 0.0;
  size_t churned = 0;
  for (uint32_t n : ties) churned += churned_last_month_[n];
  return static_cast<double>(churned) / static_cast<double>(ties.size());
}

double Population::MonthDrift(int month) const {
  // Deterministic per (seed, month): a smooth multiplicative wobble that
  // makes old months' churn regimes differ from recent ones.
  uint64_t s = HashCombine64(config_.seed, 0x9d1f * static_cast<uint64_t>(
                                               month + 100));
  Rng rng(s);
  return std::exp(config_.month_drift_scale * rng.Gaussian());
}

void Population::AdvanceMonth() {
  ++month_;
  const double drift = MonthDrift(month_);
  const int weeks = config_.weeks_per_month;

  // The month's active snapshot is the pool as of the month start.
  active_ = pool_;
  std::fill(active_flag_.begin(), active_flag_.end(), 0);
  for (uint32_t index : active_) active_flag_[index] = 1;

  // Community shocks: a persistent on/off state, so last month's churner
  // neighbourhoods keep elevated hazard this month (the contagion signal
  // that label propagation on the co-occurrence graph picks up).
  for (size_t c = 0; c < config_.num_communities; ++c) {
    if (community_shock_[c]) {
      community_shock_[c] =
          rng_.Bernoulli(config_.community_shock_persist) ? 1 : 0;
    } else {
      community_shock_[c] =
          rng_.Bernoulli(config_.community_shock_prob) ? 1 : 0;
    }
  }

  const double intent_logit_base = Logit(config_.intent_base * drift);
  std::vector<uint8_t> churned_now(traits_.size(), 0);

  for (uint32_t index : active_) {
    const CustomerTraits& t = traits_[index];
    CustomerMonthState& prev = states_[index];
    CustomerMonthState next;

    // --- Experienced network quality: persistent cell level + noise.
    next.ps_quality = Clamp(
        cell_ps_quality_[t.home_cell] + rng_.Gaussian(0.0, 0.06), 0.05, 1.0);
    next.cs_quality = Clamp(
        cell_cs_quality_[t.home_cell] + rng_.Gaussian(0.0, 0.05), 0.1, 1.0);
    next.dissatisfaction = Clamp(0.9 * (1.0 - next.ps_quality) +
                                     0.6 * (1.0 - next.cs_quality) +
                                     rng_.Gaussian(0.0, 0.05),
                                 0.0, 1.5);
    next.neighbor_churn_frac = NeighborChurnFraction(index);

    // --- Intent formation (the short-lived pre-churn state).
    const int tenure = std::max(0, month_ - t.join_month);
    const double low_tenure = std::exp(-static_cast<double>(tenure) / 3.0);
    const double low_spend = 1.0 / (1.0 + t.arpu_level);
    const double engagement_decline =
        std::max(0.0, t.base_engagement - prev.engagement);
    double z = intent_logit_base +
               config_.intent_ps_weight * (0.72 - next.ps_quality) +
               config_.intent_cs_weight * (0.78 - next.cs_quality) +
               config_.intent_engagement_weight * engagement_decline +
               config_.intent_social_weight *
                   (next.neighbor_churn_frac - 0.08) +
               config_.intent_tenure_spend_weight * low_tenure * low_spend;
    if (community_shock_[t.community]) z += config_.community_shock_boost;
    next.intent = rng_.Bernoulli(Sigmoid(z));
    // Whether the intent shows up in BSS observables depends on its cause:
    // quality-driven and community-shock churners leave "silently" (their
    // balance/usage stay normal; only OSS-side features can catch them),
    // while financially/organically driven churners disengage visibly.
    const double quality_term =
        config_.intent_ps_weight * (0.72 - next.ps_quality) +
        config_.intent_cs_weight * (0.78 - next.cs_quality);
    double expr_prob =
        config_.usage_expression_prob - 0.20 * std::max(0.0, quality_term);
    if (community_shock_[t.community]) expr_prob *= 0.45;
    next.expresses_usage =
        next.intent && rng_.Bernoulli(Clamp(expr_prob, 0.12, 0.9));
    if (next.intent) {
      // Intent mostly forms early in the month (keeps the Velocity effect
      // small, as in Table 5).
      const double u = rng_.Uniform();
      next.intent_week = u < 0.5 ? 1 : (u < 0.75 ? 2 : (u < 0.92 ? 3 : 4));
    }

    // --- Engagement path: AR(1) toward the set point; intent weeks sag.
    const double target = Clamp(
        0.8 * prev.engagement + 0.2 * t.base_engagement +
            rng_.Gaussian(0.0, 0.05) - 0.25 * next.dissatisfaction * 0.2,
        0.05, 1.2);
    next.weekly_engagement.resize(weeks);
    double engagement_sum = 0.0;
    for (int w = 0; w < weeks; ++w) {
      double e = Clamp(target + rng_.Gaussian(0.0, 0.04), 0.02, 1.25);
      if (next.expresses_usage && (w + 1) >= next.intent_week) {
        e *= (1.0 - config_.usage_intent_drop);
      }
      next.weekly_engagement[w] = e;
      engagement_sum += e;
    }
    next.engagement = engagement_sum / weeks;

    // --- Balance and recharge behaviour.
    const double spend =
        38.0 * t.arpu_level * next.engagement * rng_.LogNormal(0.0, 0.18);
    next.recharge_amount = next.expresses_usage
                               ? spend * 0.55
                               : spend * rng_.LogNormal(0.05, 0.25);
    next.balance = std::max(
        0.0, 42.0 * t.balance_scale * rng_.LogNormal(0.0, 0.30) *
                 (next.expresses_usage ? 1.0 - config_.balance_intent_drop
                                       : 1.0));

    // --- Churn draw and the 15-day recharge-period outcome.
    next.churned = rng_.Bernoulli(next.intent ? config_.churn_given_intent
                                              : config_.churn_given_no_intent);
    if (next.churned) {
      if (rng_.Bernoulli(config_.late_recharge_fraction)) {
        next.recharge_day = 16 + std::min(config_.days_per_month - 16,
                                          rng_.Poisson(4.0));
      } else {
        next.recharge_day = 0;  // never recharges
      }
    } else {
      int day = 1;
      while (day < 15 && !rng_.Bernoulli(config_.recharge_day_p)) ++day;
      next.recharge_day = day;
    }

    // --- Complaints track dissatisfaction only (deliberately weak churn
    // signal) and searches track intent (strong).
    next.complaints = rng_.Poisson(
        config_.complaint_rate * (0.25 + 1.6 * next.dissatisfaction));
    next.competitor_search =
        next.intent ? rng_.Bernoulli(config_.competitor_search_rate)
                    : rng_.Bernoulli(config_.competitor_search_noise);

    churned_now[index] = next.churned ? 1 : 0;
    states_[index] = std::move(next);
  }

  // --- Replacement: churners leave the pool; about as many joiners
  // arrive (they become active next month).
  size_t leavers = 0;
  std::vector<uint32_t> survivors;
  survivors.reserve(pool_.size());
  leaver_slots_.clear();
  for (uint32_t index : active_) {
    if (states_[index].churned) {
      ++leavers;
      leaver_slots_.emplace_back(traits_[index].community,
                                 traits_[index].home_cell);
    } else {
      survivors.push_back(index);
    }
  }
  pool_ = std::move(survivors);
  const int64_t half_spread = static_cast<int64_t>(leavers / 12);
  const int64_t jitter =
      half_spread > 0 ? rng_.UniformInt(-half_spread, half_spread) : 0;
  const size_t joiners = static_cast<size_t>(
      std::max<int64_t>(0, static_cast<int64_t>(leavers) + jitter));
  churned_now.resize(traits_.size(), 0);
  churned_last_month_ = std::move(churned_now);
  for (size_t k = 0; k < joiners; ++k) {
    const uint32_t index = SpawnCustomer(month_);
    BuildTiesFor(index);
  }
}

}  // namespace telco
