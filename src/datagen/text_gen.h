// Synthetic complaint / search text generation.
//
// Documents are drawn from a small generative topic model so the LDA
// feature extractor has real structure to recover:
//  * complaint topics follow the customer's dissatisfaction profile
//    (billing / speed / drops / service / coverage / device) — correlated
//    with network quality but only weakly with churn (Table 2: F7 weak);
//  * search topics follow persistent interests (video / shopping / news /
//    game / music / travel / handset), with a dedicated *competitor* topic
//    ("access other operators' portal, search other operators' hotline")
//    emitted in intent months (Table 2: F8 informative).

#ifndef TELCO_DATAGEN_TEXT_GEN_H_
#define TELCO_DATAGEN_TEXT_GEN_H_

#include <vector>

#include "common/rng.h"
#include "datagen/customer.h"
#include "datagen/sim_config.h"
#include "text/vocabulary.h"

namespace telco {

/// \brief Builds the two vocabularies and samples per-customer documents.
class TextGenerator {
 public:
  explicit TextGenerator(const SimConfig& config);

  const Vocabulary& complaint_vocab() const { return complaint_vocab_; }
  const Vocabulary& search_vocab() const { return search_vocab_; }

  /// Index of the competitor topic in the search topic list.
  int competitor_topic() const { return kCompetitorTopic; }

  /// Samples this month's complaint document (empty when the customer
  /// filed no complaints).
  Document ComplaintDoc(const CustomerTraits& traits,
                        const CustomerMonthState& state, Rng* rng) const;

  /// Samples this month's search document.
  Document SearchDoc(const CustomerTraits& traits,
                     const CustomerMonthState& state, Rng* rng) const;

  static constexpr int kNumComplaintTopics = 6;
  static constexpr int kNumSearchTopics = 8;
  static constexpr int kCompetitorTopic = 7;  // last search topic
  static constexpr int kWordsPerTopic = 30;

 private:
  Document SampleDoc(const std::vector<double>& topic_mix, int length,
                     int words_per_topic, size_t vocab_size, Rng* rng) const;

  SimConfig config_;
  Vocabulary complaint_vocab_;
  Vocabulary search_vocab_;
};

}  // namespace telco

#endif  // TELCO_DATAGEN_TEXT_GEN_H_
