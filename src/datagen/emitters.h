// Emitters: translate one simulated month into warehouse tables.
//
// The emitted schemas mirror the paper's raw sources (Figure 2 / Figure
// 4): BSS CDR + billing + demographics + complaints + recharge, and OSS
// CS/PS KPI records, MR locations, DPI search text and the three graph
// edge tables. The feature layer (src/features) only ever sees these
// tables — ground truth stays inside the simulator.
//
// Every emitter streams rows through the WarehouseSink / ChunkSink API
// (storage/chunk_sink.h), so the same code fills an in-memory Catalog or
// an out-of-core streamed warehouse. Generation is sharded: customers
// (or communities) are split into fixed-size shards, shards are
// generated in parallel from independent per-shard RNG streams keyed
// (seed, month, table family, shard), and spliced into the sink in shard
// order — the emitted rows are byte-for-byte independent of the thread
// count.

#ifndef TELCO_DATAGEN_EMITTERS_H_
#define TELCO_DATAGEN_EMITTERS_H_

#include "common/result.h"
#include "common/thread_pool.h"
#include "datagen/population.h"
#include "datagen/text_gen.h"
#include "storage/catalog.h"
#include "storage/chunk_sink.h"

namespace telco {

/// \brief Knobs for sharded table generation.
struct EmitOptions {
  /// Worker pool; null uses ThreadPool::Default().
  ThreadPool* pool = nullptr;
  /// Customers (or communities) per generation shard. Part of the RNG
  /// stream keying: changing it changes the generated data, so it stays
  /// at the default everywhere determinism across runs matters.
  size_t shard_items = 2048;
};

/// Emits the static `customers` demographics table (all customers ever
/// seen, so later months' joiners are covered).
Status EmitCustomersTable(const Population& pop, WarehouseSink* sink);
Status EmitCustomersTable(const Population& pop, Catalog* catalog);

/// Emits the two vocabulary tables (word_id -> word).
Status EmitVocabTables(const TextGenerator& textgen, WarehouseSink* sink);
Status EmitVocabTables(const TextGenerator& textgen, Catalog* catalog);

/// Emits every per-month table for the population's current month.
Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       WarehouseSink* sink, const EmitOptions& options = {});
Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       Catalog* catalog);

}  // namespace telco

#endif  // TELCO_DATAGEN_EMITTERS_H_
