// Emitters: translate one simulated month into warehouse tables.
//
// The emitted schemas mirror the paper's raw sources (Figure 2 / Figure
// 4): BSS CDR + billing + demographics + complaints + recharge, and OSS
// CS/PS KPI records, MR locations, DPI search text and the three graph
// edge tables. The feature layer (src/features) only ever sees these
// tables — ground truth stays inside the simulator.

#ifndef TELCO_DATAGEN_EMITTERS_H_
#define TELCO_DATAGEN_EMITTERS_H_

#include "common/result.h"
#include "datagen/population.h"
#include "datagen/text_gen.h"
#include "storage/catalog.h"

namespace telco {

/// Registers/refreshes the static `customers` demographics table (all
/// customers ever seen, so later months' joiners are covered).
Status EmitCustomersTable(const Population& pop, Catalog* catalog);

/// Registers the two vocabulary tables (word_id -> word).
Status EmitVocabTables(const TextGenerator& textgen, Catalog* catalog);

/// Emits every per-month table for the population's current month.
Status EmitMonthTables(const Population& pop, const TextGenerator& textgen,
                       Catalog* catalog);

}  // namespace telco

#endif  // TELCO_DATAGEN_EMITTERS_H_
