#include "datagen/sim_config.h"

#include <cmath>

#include "common/string_util.h"

namespace telco {

Result<size_t> ResolveNumCustomers(const SimConfig& config) {
  const double sf = config.scale_factor;
  if (std::isnan(sf) || std::isinf(sf) || sf < 0.0) {
    return Status::InvalidArgument(
        StrFormat("scale_factor must be a finite value >= 0, got %g", sf));
  }
  if (config.num_customers == 0) {
    return Status::InvalidArgument("num_customers must be >= 1");
  }
  // An explicit num_customers wins; the scale factor only applies when
  // the population was left at its default.
  if (config.num_customers != kDefaultNumCustomers || sf == 0.0) {
    return config.num_customers;
  }
  const double scaled = std::round(sf * kPaperCustomersPerScaleFactor);
  if (scaled < 1.0) {
    return Status::InvalidArgument(StrFormat(
        "scale_factor %g resolves to zero customers", sf));
  }
  if (scaled > 1e10) {
    return Status::InvalidArgument(StrFormat(
        "scale_factor %g resolves to an implausible population", sf));
  }
  return static_cast<size_t>(scaled);
}

Result<SimConfig> ResolveScale(SimConfig config) {
  TELCO_ASSIGN_OR_RETURN(const size_t customers,
                         ResolveNumCustomers(config));
  const bool scale_driven =
      config.num_customers == kDefaultNumCustomers &&
      config.scale_factor > 0.0 && customers != config.num_customers;
  if (scale_driven) {
    // Keep communities ~84 customers and cells ~175 customers each, as at
    // the defaults, so contagion neighbourhood sizes do not change with
    // scale. Only knobs still at their defaults are touched.
    const double ratio =
        static_cast<double>(customers) / kDefaultNumCustomers;
    const SimConfig defaults;
    if (config.num_communities == defaults.num_communities) {
      config.num_communities = static_cast<size_t>(
          std::max(1.0, std::round(defaults.num_communities * ratio)));
    }
    if (config.num_cells == defaults.num_cells) {
      config.num_cells = static_cast<size_t>(
          std::max(1.0, std::round(defaults.num_cells * ratio)));
    }
  }
  config.num_customers = customers;
  config.scale_factor = 0.0;  // resolved; a second pass is a no-op
  return config;
}

}  // namespace telco
