// Customer trait and monthly latent-state records of the simulator.

#ifndef TELCO_DATAGEN_CUSTOMER_H_
#define TELCO_DATAGEN_CUSTOMER_H_

#include <cstdint>
#include <vector>

namespace telco {

/// Retention offer families of Section 5.5 (class 0 = accepts nothing).
enum class OfferKind : int {
  kNone = 0,
  kCashback100 = 1,  // "Get 100 cashback on recharge of 100"
  kCashback50 = 2,   // "Get 50 cashback on recharge of 100"
  kFlux500M = 3,     // "Get 500MB flux on recharge of 50"
  kVoice200Min = 4,  // "Get 200-minute voice call on recharge of 50"
};
inline constexpr int kNumOfferClasses = 5;

const char* OfferKindToString(OfferKind kind);

/// \brief Persistent traits assigned when a customer joins.
struct CustomerTraits {
  int64_t imsi = 0;
  int gender = 0;  // 0/1
  int age = 30;
  int pspt_type = 0;
  int is_shanghai = 0;
  int town_id = 0;
  int sale_id = 0;
  int credit_value = 60;
  int64_t product_id = 0;
  double product_price = 0.0;
  int product_kind = 0;
  int community = 0;
  int home_cell = 0;
  /// Month the customer joined (1-based; <= 0 means pre-history).
  int join_month = 0;
  /// Spending propensity (scales charges and balance).
  double arpu_level = 1.0;
  /// Preference weights for data vs voice usage.
  double data_affinity = 0.5;
  double voice_affinity = 0.5;
  /// Scales the customer's social degree and graph weights.
  double social_activity = 1.0;
  /// Long-run engagement set point in [0.2, 1].
  double base_engagement = 0.7;
  /// Scales the customer's typical account balance.
  double balance_scale = 1.0;
  /// Whether this customer uses SMS at all (OTT substitution).
  bool uses_sms = false;
  /// Latent retention-offer affinity (drives campaign acceptance).
  OfferKind offer_affinity = OfferKind::kNone;
};

/// \brief Latent state realised for one active customer in one month.
struct CustomerMonthState {
  /// Mean engagement over the month, in (0, 1.2].
  double engagement = 0.7;
  /// Weekly engagement path (weeks_per_month entries).
  std::vector<double> weekly_engagement;
  /// Month-end account balance (currency units).
  double balance = 50.0;
  /// Total recharge amount during the month.
  double recharge_amount = 0.0;
  /// PS / CS service quality experienced this month, in (0, 1].
  double ps_quality = 0.8;
  double cs_quality = 0.9;
  /// Composite dissatisfaction in [0, ~1.5).
  double dissatisfaction = 0.0;
  /// Fraction of graph neighbours who churned in the previous month.
  double neighbor_churn_frac = 0.0;
  /// Competitor intent: the short-lived pre-churn state.
  bool intent = false;
  /// Whether the intent expresses itself in BSS observables (balance /
  /// usage drop); silent churners keep normal F1 behaviour.
  bool expresses_usage = false;
  /// 1-based week the intent formed (weeks >= this are affected).
  int intent_week = 0;
  /// Whether the customer churns at the end of this month (the label).
  bool churned = false;
  /// Day of recharge in the next recharge period; 0 = never recharged.
  /// Churners have day 0 or > 15 (the 15-day labelling rule).
  int recharge_day = 1;
  /// Number of complaints filed this month.
  int complaints = 0;
  /// Whether this month's searches contain competitor topics.
  bool competitor_search = false;
};

}  // namespace telco

#endif  // TELCO_DATAGEN_CUSTOMER_H_
