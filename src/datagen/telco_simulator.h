// TelcoSimulator: facade that runs the population for N months, emits all
// warehouse tables, and records the ground truth that benches/tests (and
// the campaign-response model) need.

#ifndef TELCO_DATAGEN_TELCO_SIMULATOR_H_
#define TELCO_DATAGEN_TELCO_SIMULATOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "datagen/emitters.h"
#include "datagen/population.h"
#include "datagen/text_gen.h"
#include "storage/catalog.h"

namespace telco {

/// \brief Per-month ground truth (what really happened in the world).
struct MonthTruth {
  int month = 0;
  std::vector<int64_t> active_imsis;
  /// Parallel to active_imsis: churned at end of month?
  std::vector<uint8_t> churned;
  /// Parallel: day of recharge in the recharge period (0 = never).
  std::vector<int> recharge_day;
  /// Parallel: the latent intent flag (diagnostics only).
  std::vector<uint8_t> intent;

  size_t NumChurners() const {
    size_t n = 0;
    for (uint8_t c : churned) n += c;
    return n;
  }
  double ChurnRate() const {
    return active_imsis.empty()
               ? 0.0
               : static_cast<double>(NumChurners()) /
                     static_cast<double>(active_imsis.size());
  }
};

/// \brief Ground truth across the whole run.
struct SimTruth {
  /// months[m-1] is month m.
  std::vector<MonthTruth> months;
  /// Latent retention-offer affinity per customer.
  std::unordered_map<int64_t, OfferKind> offer_affinity;

  /// Whether `imsi` churned at the end of `month`; false if not active.
  bool Churned(int month, int64_t imsi) const;
};

/// \brief One point of the Figure 1 churn-rate series.
struct ChurnRatePoint {
  int month;
  double prepaid_rate;
  double postpaid_rate;
};

/// \brief Runs the simulation and owns the resulting ground truth.
///
/// The config's scale is resolved at construction (ResolveScale: explicit
/// num_customers wins, else scale_factor * 2.1M); an invalid scale
/// surfaces as the error status of the first Run call.
class TelcoSimulator {
 public:
  explicit TelcoSimulator(SimConfig config);

  /// Simulates config.num_months months, emitting every table into
  /// `catalog` and recording ground truth.
  Status Run(Catalog* catalog);

  /// Streaming flavour: emits every table into `sink` (e.g. a
  /// StreamingWarehouseSink building an out-of-core warehouse) and calls
  /// sink->Finish() at the end. With set_record_truth(false), ground
  /// truth is skipped so memory stays O(chunk) at large scale factors.
  Status Run(WarehouseSink* sink, const EmitOptions& options = {});

  /// Whether Run records SimTruth (default true). Turn off for
  /// generation-only runs at large scale — truth is O(customers).
  void set_record_truth(bool record) { record_truth_ = record; }

  const SimConfig& config() const { return config_; }
  const SimTruth& truth() const { return truth_; }
  const TextGenerator& text_generator() const { return textgen_; }

  /// Lightweight Figure-1 generator: monthly prepaid vs postpaid churn
  /// rates (rates only, no tables; postpaid is not otherwise simulated).
  static std::vector<ChurnRatePoint> ChurnRateSeries(int num_months,
                                                     const SimConfig& config);

 private:
  // Order matters: config_resolution_ must be initialised before config_
  // (the resolving helper writes it).
  Status config_resolution_ = Status::OK();
  SimConfig config_;
  Population population_;
  TextGenerator textgen_;
  SimTruth truth_;
  bool record_truth_ = true;
  std::unordered_map<int64_t, uint8_t> churn_lookup_;  // key: month<<40|imsi
};

}  // namespace telco

#endif  // TELCO_DATAGEN_TELCO_SIMULATOR_H_
