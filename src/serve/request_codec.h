// Newline-delimited JSON protocol of `telcochurn serve`.
//
// Each input line is one JSON object; each output line is one JSON
// object. Scriptable over stdin/stdout with no network dependency.
//
//   score request   {"id":7,"imsi":1234,"features":[0.1,2,...]}
//                   features are in the snapshot's schema order; an
//                   optional "model":"name" member routes to a named
//                   model (ModelRouter) — absent = the default route
//   hot-swap        {"cmd":"swap","model":"/path/to/model.rf"}
//                   optional "name":"segment-a" targets a named route
//   stats           {"cmd":"stats"}
//   metrics         {"cmd":"metrics"}
//                   full MetricsRegistry snapshot as one JSON line
//   quit            {"cmd":"quit"}
//
//   score response  {"id":7,"imsi":1234,"score":0x...,"snapshot":1}
//                   score is a full-precision JSON number (JsonNumber),
//                   so responses round-trip bit-identically; requests
//                   routed to a named model get a "model":"name" echo
//   error response  {"id":7,"error":"...","retry":false}
//                   retry:true marks transient overload (backpressure)
//
// Parsing is strict about types (a string where a number is expected is
// an error, never a crash) — the serve_fuzz ctest feeds this parser
// random and malformed documents under ASan. Lines are bounded
// (kMaxRequestLineBytes): an oversized frame is InvalidArgument before
// any JSON work, so a hostile client cannot make the server buffer an
// unbounded line.

#ifndef TELCO_SERVE_REQUEST_CODEC_H_
#define TELCO_SERVE_REQUEST_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "serve/scoring_executor.h"

namespace telco {

/// \brief What one input line asks the server to do.
enum class ServeRequestType : int {
  kScore = 0,
  kSwap = 1,
  kStats = 2,
  kQuit = 3,
  kMetrics = 4,
};

/// \brief Largest accepted request line. Anything longer is rejected as
/// InvalidArgument (and the TCP front-end closes the connection) instead
/// of growing an unbounded buffer. 1 MiB comfortably fits thousands of
/// full-precision features per row.
inline constexpr size_t kMaxRequestLineBytes = 1 << 20;

/// \brief One parsed input line.
struct ServeRequest {
  ServeRequestType type = ServeRequestType::kScore;
  ScoreRequest score;      // kScore (score.model = named route or "")
  std::string model_path;  // kSwap: file to load
  std::string model_name;  // kSwap: named route to publish into ("" = default)
};

/// \brief Parses one protocol line. Malformed JSON, wrong types, missing
/// required members, non-integral ids and oversized lines
/// (> kMaxRequestLineBytes) are InvalidArgument.
Result<ServeRequest> ParseServeRequest(std::string_view line);

/// \brief One score-response line (no trailing newline).
std::string FormatScoreResponse(const ScoreRequest& request,
                                const ScoreOutcome& outcome);

/// \brief One error-response line (no trailing newline). `retry` is set
/// from Status::IsUnavailable — transient overload the client should
/// back off and resubmit.
std::string FormatErrorResponse(uint64_t id, const Status& status);

/// \brief One NDJSON score request line (no trailing newline) — the
/// inverse of ParseServeRequest for kScore, used by `telcochurn
/// requests` to emit deterministic replayable streams.
std::string FormatScoreRequest(const ScoreRequest& request);

}  // namespace telco

#endif  // TELCO_SERVE_REQUEST_CODEC_H_
