// ModelRouter: multi-model serving in front of SnapshotRegistry.
//
// The paper's operator does not serve one global model: champion and
// challenger models coexist, and segments (prepaid/postpaid, region,
// month) score against different forests that retrain on different
// cadences. The router keys each *route* by name — a route owns its own
// SnapshotRegistry (independent hot swap, independent version counter)
// and its own micro-batching ScoringExecutor (so one model's batches
// never mix rows with another's, preserving the one-snapshot-per-batch
// bit-parity guarantee per route). The empty name "" is the default
// route, which keeps the single-model protocol working unchanged.
//
// Routes are created on first Publish and never removed: a route pointer
// is stable for the router's lifetime, so the per-request lock is one
// map lookup. Unknown names fail fast with NotFound — a typo'd segment
// name must never silently score against the wrong model.

#ifndef TELCO_SERVE_MODEL_ROUTER_H_
#define TELCO_SERVE_MODEL_ROUTER_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/scoring_executor.h"
#include "serve/snapshot_registry.h"

namespace telco {

struct ModelRouterOptions {
  /// Every route's executor is built with these options (shared pool,
  /// batch size, admission-queue bound).
  ScoringExecutorOptions executor;
};

/// \brief Routes score requests to named (SnapshotRegistry,
/// ScoringExecutor) pairs; "" is the default route.
class ModelRouter {
 public:
  explicit ModelRouter(ModelRouterOptions options = {});

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Publishes `snapshot` as the next version of route `name`, creating
  /// the route on its first publish. Returns the route-local version (1
  /// for a route's first model). Thread-safe against concurrent Submit
  /// and Publish on any route.
  ///
  /// `engine` pins the route's scoring engine (exact flat forest vs
  /// binned integer-compare); nullopt keeps whatever the route already
  /// has — the process-wide DefaultForestEngine() for a route that was
  /// never pinned. Pinning is per route, so a champion and a challenger
  /// can serve different engines side by side.
  uint64_t Publish(const std::string& name,
                   std::shared_ptr<const ModelSnapshot> snapshot,
                   std::optional<ForestEngine> engine = std::nullopt);

  /// Submits to the route named by request.model. NotFound for a route
  /// that has never been published; otherwise the route executor's
  /// admission verdict (Unavailable on a full queue).
  Result<std::future<ScoreOutcome>> Submit(ScoreRequest request,
                                           RequestTelemetry telemetry = {});

  /// Callback flavour for event-loop callers (the TCP front-end); same
  /// routing and admission semantics as Submit.
  Status SubmitWithCallback(ScoreRequest request,
                            std::function<void(ScoreOutcome)> done,
                            RequestTelemetry telemetry = {});

  /// The registry behind route `name` (NotFound if never published).
  /// Stable for the router's lifetime.
  Result<SnapshotRegistry*> RouteRegistry(const std::string& name) const;

  /// True iff route `name` exists.
  bool HasRoute(const std::string& name) const;

  /// Route names in lexicographic order ("" first when present).
  std::vector<std::string> RouteNames() const;

  /// Point-in-time observability snapshot of one route: which snapshot
  /// is live and how its executor is doing. Counters are per-route (the
  /// executors own them), unlike the process-wide serve.executor.*
  /// metrics which sum every route.
  struct RouteStats {
    std::string name;
    /// Live snapshot version (0 = route exists but nothing acquired yet).
    uint64_t snapshot_version = 0;
    std::string label;
    uint32_t fingerprint = 0;
    /// The forest engine this route scores with ("exact" or "binned"):
    /// its pinned engine, else the process default at snapshot time.
    std::string engine;
    /// Requests waiting in this route's admission queue right now.
    size_t queue_depth = 0;
    /// Requests this route has finished scoring (incl. per-row failures).
    uint64_t scored = 0;
    /// Requests this route refused at admission (full queue).
    uint64_t rejected = 0;
  };

  /// Stats for every route, in RouteNames() order. Each route's fields
  /// are read without stopping its traffic, so the snapshot is
  /// per-field consistent, not cross-field atomic.
  std::vector<RouteStats> Stats() const;

  /// Blocks until every accepted request on every route has completed.
  void DrainAll();

 private:
  struct Route {
    explicit Route(const ScoringExecutorOptions& options)
        : executor(&registry, options) {}
    SnapshotRegistry registry;
    ScoringExecutor executor;
  };

  /// The route for `name`, or null if it does not exist. The returned
  /// pointer stays valid for the router's lifetime (routes are never
  /// erased).
  Route* FindRoute(const std::string& name) const;

  ModelRouterOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Route>> routes_;
};

}  // namespace telco

#endif  // TELCO_SERVE_MODEL_ROUTER_H_
