// ModelSnapshot: an immutable, refcounted bundle of one trained churn
// model, the feature schema it expects, and a fingerprint identifying the
// exact model bytes.
//
// The deployed system retrains monthly and pushes scores for ~2.1M
// subscribers between retrains (paper §5); online scoring must therefore
// keep serving the current month's model while next month's loads. A
// snapshot never changes after construction — scoring threads hold it via
// shared_ptr<const ModelSnapshot>, so a snapshot stays alive for exactly
// as long as any in-flight batch references it (the refcount is the
// lifetime), and its scores are bit-identical to the offline pipeline's
// because both go through the same RandomForest prediction code.

#ifndef TELCO_SERVE_MODEL_SNAPSHOT_H_
#define TELCO_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"

namespace telco {

class ThreadPool;

/// \brief One immutable serving model + schema + fingerprint.
class ModelSnapshot {
 public:
  /// Loads a snapshot from a model file written by SaveRandomForest (the
  /// PR-2 format: CRC32-trailer-verified, fail-closed on corruption) plus
  /// its `.features` sidecar naming the expected columns in order.
  static Result<std::shared_ptr<const ModelSnapshot>> LoadFromFile(
      const std::string& model_path);

  /// Wraps an already-fitted forest (e.g. the one a ChurnPipeline just
  /// trained) without touching disk. The fingerprint is the checksum of
  /// the forest's canonical serialised form, so it equals the file
  /// trailer the same forest would be saved with.
  static Result<std::shared_ptr<const ModelSnapshot>> FromForest(
      RandomForest forest, std::vector<std::string> feature_names,
      std::string label);

  /// Feature columns, in the exact order Score expects them.
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  size_t num_features() const { return feature_names_.size(); }

  /// Human-readable origin (file path or caller-supplied label).
  const std::string& label() const { return label_; }

  /// CRC32 of the model's canonical serialised bytes.
  uint32_t fingerprint() const { return fingerprint_; }

  const RandomForest& forest() const { return forest_; }

  /// Churn likelihood of one feature row (row.size() == num_features()).
  double Score(std::span<const double> row) const;

  /// Batch scoring through the same entry point the offline pipeline
  /// uses (Classifier::PredictProbaBatch, i.e. the compiled flat-forest
  /// engine), so online scores are bit-identical to offline ones for any
  /// batch split or thread count.
  std::vector<double> ScoreBatch(FeatureMatrix rows, ThreadPool* pool) const;

  /// Explicit-engine flavour for per-route serving: the router can pin a
  /// route to the exact flat engine or the binned integer-compare engine
  /// instead of the process-wide default. Scores are bit-identical
  /// either way.
  std::vector<double> ScoreBatch(FeatureMatrix rows, ThreadPool* pool,
                                 ForestEngine engine) const;

  /// Thin wrapper over the FeatureMatrix overload.
  std::vector<double> ScoreBatch(const Dataset& rows,
                                 ThreadPool* pool) const;

 private:
  ModelSnapshot(RandomForest forest, std::vector<std::string> feature_names,
                std::string label, uint32_t fingerprint);

  RandomForest forest_;
  std::vector<std::string> feature_names_;
  std::string label_;
  uint32_t fingerprint_;
};

}  // namespace telco

#endif  // TELCO_SERVE_MODEL_SNAPSHOT_H_
