#include "serve/model_snapshot.h"

#include <utility>

#include "common/telemetry/metrics.h"
#include "ml/serialize.h"
#include "storage/atomic_file.h"

namespace telco {

namespace {

Result<std::vector<std::string>> ReadFeatureSidecar(
    const std::string& model_path) {
  TELCO_ASSIGN_OR_RETURN(const std::string text,
                         ReadFileToString(model_path + ".features"));
  std::vector<std::string> names;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) names.push_back(current);
  if (names.empty()) {
    return Status::IoError("feature sidecar " + model_path +
                           ".features names no columns");
  }
  return names;
}

}  // namespace

ModelSnapshot::ModelSnapshot(RandomForest forest,
                             std::vector<std::string> feature_names,
                             std::string label, uint32_t fingerprint)
    : forest_(std::move(forest)),
      feature_names_(std::move(feature_names)),
      label_(std::move(label)),
      fingerprint_(fingerprint) {}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::LoadFromFile(
    const std::string& model_path) {
  static const Counter loads =
      MetricsRegistry::Global().GetCounter("serve.snapshot.loads");
  static const Counter load_failures =
      MetricsRegistry::Global().GetCounter("serve.snapshot.load_failures");

  Result<RandomForest> forest = LoadRandomForest(model_path);
  if (!forest.ok()) {
    load_failures.Add();
    return forest.status();
  }
  Result<std::vector<std::string>> features = ReadFeatureSidecar(model_path);
  if (!features.ok()) {
    load_failures.Add();
    return features.status();
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      FromForest(std::move(forest).ValueOrDie(),
                 std::move(features).ValueOrDie(), model_path);
  if (snapshot.ok()) loads.Add();
  return snapshot;
}

Result<std::shared_ptr<const ModelSnapshot>> ModelSnapshot::FromForest(
    RandomForest forest, std::vector<std::string> feature_names,
    std::string label) {
  if (forest.num_trees() == 0) {
    return Status::InvalidArgument(
        "a serving snapshot requires a fitted forest");
  }
  if (feature_names.empty()) {
    return Status::InvalidArgument(
        "a serving snapshot requires a feature schema");
  }
  TELCO_ASSIGN_OR_RETURN(const uint32_t fingerprint, ForestChecksum(forest));
  return std::shared_ptr<const ModelSnapshot>(
      new ModelSnapshot(std::move(forest), std::move(feature_names),
                        std::move(label), fingerprint));
}

double ModelSnapshot::Score(std::span<const double> row) const {
  return forest_.PredictProba(row);
}

std::vector<double> ModelSnapshot::ScoreBatch(FeatureMatrix rows,
                                              ThreadPool* pool) const {
  return forest_.PredictProbaBatch(rows, pool);
}

std::vector<double> ModelSnapshot::ScoreBatch(FeatureMatrix rows,
                                              ThreadPool* pool,
                                              ForestEngine engine) const {
  return forest_.PredictProbaBatch(rows, pool, engine);
}

std::vector<double> ModelSnapshot::ScoreBatch(const Dataset& rows,
                                              ThreadPool* pool) const {
  return ScoreBatch(rows.Matrix(), pool);
}

}  // namespace telco
