#include "serve/snapshot_registry.h"

#include "common/logging.h"
#include "common/telemetry/metrics.h"

namespace telco {

uint64_t SnapshotRegistry::Publish(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  TELCO_CHECK(snapshot != nullptr) << "cannot publish a null snapshot";
  static const Counter swaps =
      MetricsRegistry::Global().GetCounter("serve.registry.swaps");
  static const Gauge version_gauge =
      MetricsRegistry::Global().GetGauge("serve.registry.version");

  uint64_t version;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_.snapshot = std::move(snapshot);
    version = ++current_.version;
  }
  swaps.Add();
  version_gauge.Set(static_cast<double>(version));
  return version;
}

SnapshotRef SnapshotRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t SnapshotRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_.version;
}

}  // namespace telco
