#include "serve/scoring_executor.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"

namespace telco {

namespace {

struct ExecutorMetrics {
  Counter requests;
  Counter rejected;
  Counter batches;
  Histogram batch_size;
  Histogram latency_seconds;
  Gauge queue_depth;
  // Per-stage request timing (DESIGN.md §13); log-bucketed so the tails
  // (p99/p999) interpolate within ~6%-wide buckets instead of decades.
  Histogram queue_wait_seconds;
  Histogram score_seconds;
};

const ExecutorMetrics& Metrics() {
  static const ExecutorMetrics* const m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    static const std::vector<double> kBatchBounds{1,  2,  4,   8,   16,
                                                  32, 64, 128, 256, 512};
    return new ExecutorMetrics{
        r.GetCounter("serve.executor.requests"),
        r.GetCounter("serve.executor.rejected"),
        r.GetCounter("serve.executor.batches"),
        r.GetHistogram("serve.executor.batch_size", kBatchBounds),
        r.GetLogHistogram("serve.executor.latency_seconds"),
        r.GetGauge("serve.executor.queue_depth"),
        r.GetLogHistogram("serve.request.queue_wait_seconds"),
        r.GetLogHistogram("serve.request.score_seconds"),
    };
  }();
  return *m;
}

}  // namespace

ScoringExecutor::ScoringExecutor(SnapshotRegistry* registry,
                                 ScoringExecutorOptions options)
    : registry_(registry), options_(options) {
  TELCO_CHECK(registry_ != nullptr);
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  if (options_.max_queue_depth == 0) options_.max_queue_depth = 1;
  if (options_.pool == nullptr) options_.pool = &ThreadPool::Default();
  if (options_.engine.has_value()) SetEngine(*options_.engine);
  if (!options_.route_name.empty()) {
    route_latency_ = MetricsRegistry::Global().GetLogHistogram(
        "serve.route." + options_.route_name + ".latency_seconds");
  }
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

ScoringExecutor::~ScoringExecutor() { Shutdown(); }

Result<std::future<ScoreOutcome>> ScoringExecutor::Submit(
    ScoreRequest request, RequestTelemetry telemetry) {
  // No schema validation here: checking the row width against the
  // *current* snapshot would race with a concurrent hot swap (the batch
  // may score against a different snapshot than Submit saw). The
  // authoritative width check happens at batch dispatch, against the
  // snapshot the batch actually acquired; a mismatch fails that
  // request's outcome, never the whole batch.
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.telemetry = telemetry;
  std::future<ScoreOutcome> future = pending.promise.get_future();
  TELCO_RETURN_NOT_OK(Enqueue(std::move(pending)));
  return future;
}

Status ScoringExecutor::SubmitWithCallback(
    ScoreRequest request, std::function<void(ScoreOutcome)> done,
    RequestTelemetry telemetry) {
  TELCO_CHECK(done != nullptr);
  Pending pending;
  pending.request = std::move(request);
  pending.callback = std::move(done);
  pending.enqueued = std::chrono::steady_clock::now();
  pending.telemetry = telemetry;
  return Enqueue(std::move(pending));
}

Status ScoringExecutor::Enqueue(Pending pending) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      return Status::Internal("executor is shut down");
    }
    if (queue_.size() >= options_.max_queue_depth) {
      Metrics().rejected.Add();
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(StrFormat(
          "admission queue full (%zu requests); drain a response and retry",
          queue_.size()));
    }
    queue_.push_back(std::move(pending));
    depth = queue_.size();
  }
  Metrics().requests.Add();
  Metrics().queue_depth.Set(static_cast<double>(depth));
  queue_cv_.notify_one();
  return Status::OK();
}

void ScoringExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !in_flight_; });
}

void ScoringExecutor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

size_t ScoringExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ScoringExecutor::DispatchLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ with an empty queue: everything accepted has completed.
        return;
      }
      const size_t take = std::min(options_.max_batch_size, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = true;
    }
    ScoreBatch(std::move(batch));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = false;
    }
    idle_cv_.notify_all();
  }
}

void ScoringExecutor::ScoreBatch(std::vector<Pending> batch) {
  TraceSpan span(StrFormat("serve.score_batch:%zu", batch.size()));
  // One snapshot per batch: every request in it scores against the same
  // model, whatever a concurrent Publish does.
  const SnapshotRef ref = registry_->Acquire();
  Metrics().batches.Add();
  Metrics().batch_size.Observe(static_cast<double>(batch.size()));

  // Stage attribution: queue_wait ends (and score begins) when the batch
  // starts scoring; both are batch-grained on the score side, which is
  // exact for the batch and within one batch-width per request.
  const auto dispatch_time = std::chrono::steady_clock::now();
  for (const Pending& pending : batch) {
    Metrics().queue_wait_seconds.Observe(
        std::chrono::duration<double>(dispatch_time - pending.enqueued)
            .count());
  }

  const auto finish = [&](Pending& pending, ScoreOutcome outcome) {
    const auto now = std::chrono::steady_clock::now();
    const double latency =
        std::chrono::duration<double>(now - pending.enqueued).count();
    Metrics().latency_seconds.Observe(latency);
    Metrics().score_seconds.Observe(
        std::chrono::duration<double>(now - dispatch_time).count());
    route_latency_.Observe(latency);
    if (pending.telemetry.trace_span != 0) {
      // Reader→executor parent propagation: stage spans hang off the
      // request span the reader thread allocated, reconstructed here
      // retroactively (the steady-clock stamps convert into the
      // recorder's timebase by offsetting from its current reading).
      TraceRecorder& recorder = TraceRecorder::Global();
      const double now_us = recorder.NowMicros();
      const auto micros_ago = [&](std::chrono::steady_clock::time_point t) {
        return now_us -
               std::chrono::duration<double, std::micro>(now - t).count();
      };
      const double enqueued_us = micros_ago(pending.enqueued);
      const double dispatch_us = micros_ago(dispatch_time);
      recorder.AppendCompleted("serve.request.queue_wait", 0,
                               pending.telemetry.trace_span, enqueued_us,
                               dispatch_us);
      recorder.AppendCompleted("serve.request.score", 0,
                               pending.telemetry.trace_span, dispatch_us,
                               now_us);
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (pending.callback) {
      pending.callback(std::move(outcome));
    } else {
      pending.promise.set_value(std::move(outcome));
    }
  };

  if (ref.snapshot == nullptr) {
    for (Pending& pending : batch) {
      finish(pending,
             ScoreOutcome{Status::InvalidArgument(
                              "no model snapshot published; publish one "
                              "before scoring"),
                          0.0, 0, 0});
    }
    return;
  }

  // The authoritative schema check: rows whose width matches the batch
  // snapshot are packed into one contiguous FeatureMatrix; mismatches
  // (the request was built for a different snapshot than this batch
  // acquired) fail individually without poisoning the batch.
  FeatureMatrixBuffer rows(ref.snapshot->num_features());
  rows.Reserve(batch.size());
  std::vector<size_t> row_of_pending(batch.size(), SIZE_MAX);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].request.features.size() == ref.snapshot->num_features()) {
      row_of_pending[i] = rows.num_rows();
      rows.AddRow(batch[i].request.features);
    }
  }
  const std::vector<double> scores = ref.snapshot->ScoreBatch(
      rows.matrix(), options_.pool, engine().value_or(DefaultForestEngine()));

  for (size_t i = 0; i < batch.size(); ++i) {
    if (row_of_pending[i] == SIZE_MAX) {
      finish(batch[i],
             ScoreOutcome{
                 Status::InvalidArgument(StrFormat(
                     "request %llu has %zu features; snapshot v%llu "
                     "expects %zu",
                     static_cast<unsigned long long>(batch[i].request.id),
                     batch[i].request.features.size(),
                     static_cast<unsigned long long>(ref.version),
                     ref.snapshot->num_features())),
                 0.0, ref.version, ref.snapshot->fingerprint()});
      continue;
    }
    finish(batch[i],
           ScoreOutcome{Status::OK(), scores[row_of_pending[i]], ref.version,
                        ref.snapshot->fingerprint()});
  }
}

}  // namespace telco
