// TcpScoringServer: the network front-end of the online scoring service.
//
// `telcochurn serve --tcp-port P` binds a non-blocking listen socket and
// serves the same NDJSON protocol as the stdio server (request_codec.h)
// to many concurrent clients, with multi-model routing:
//
//   acceptor thread --(round robin)--> N reader threads, each running an
//   epoll loop over its own connections --> ModelRouter --> per-route
//   micro-batching ScoringExecutor --> completion callbacks --> ordered
//   per-connection response writes
//
// Concurrency contract:
//  - Each connection is owned by exactly one reader thread; all socket
//    I/O happens on that thread. Executor callbacks never touch the
//    socket — they fill a response slot under the connection mutex and
//    wake the owning reader via eventfd.
//  - Responses are written in request-arrival order per connection (the
//    slot queue), so a single-connection replay is byte-identical to the
//    stdio server for the same request stream.
//  - One snapshot per batch still holds per route (ScoringExecutor), so
//    TCP-online scores are bit-identical to offline PredictProbaBatch,
//    including across concurrent named-model hot swaps.
//
// Flow control:
//  - Admission: a full route queue rejects with Unavailable + retry:true
//    (load shedding, never unbounded memory).
//  - Per-connection backpressure: when a connection's pending response
//    bytes exceed write_high_watermark, the reader stops reading it
//    (EPOLLIN off) until the client drains below write_low_watermark.
//  - Frame bound: an unterminated line longer than max_line_bytes gets
//    an InvalidArgument response and the connection is closed — framing
//    is unrecoverable and the buffer must not grow without bound.
//
// A dropped client is a clean per-connection shutdown: SIGPIPE is
// ignored, sends use MSG_NOSIGNAL, and EPIPE/ECONNRESET just close that
// connection. Linux-only (epoll + eventfd), like the rest of the
// serving scripts.

#ifndef TELCO_SERVE_TCP_SERVER_H_
#define TELCO_SERVE_TCP_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "serve/model_router.h"
#include "serve/request_codec.h"
#include "serve/serve_stats.h"

namespace telco {

struct TcpServerOptions {
  /// Port to bind (0 = ephemeral; read the real one from port()).
  int port = 0;
  /// Bind address. Default loopback: exposing a scoring service beyond
  /// the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// Reader event-loop threads; connections are spread round-robin.
  size_t readers = 2;
  /// Listen backlog.
  int backlog = 128;
  /// Connections beyond this are accepted and immediately closed (shed).
  size_t max_connections = 1024;
  /// Longest accepted request line (see kMaxRequestLineBytes).
  size_t max_line_bytes = kMaxRequestLineBytes;
  /// Stop reading a connection whose un-drained response bytes exceed
  /// the high watermark; resume below the low watermark.
  size_t write_high_watermark = 4u << 20;
  size_t write_low_watermark = 1u << 20;
  /// Close a connection that has made no progress (no bytes received, no
  /// bytes the client drained) for this long. A trickle of half-frames
  /// counts as progress byte-wise but a connection that just sits there
  /// holding a slot does not — this bounds how long a slow-loris client
  /// can pin one of max_connections. <= 0 disables the reaper.
  int idle_timeout_s = 300;
  /// Emit a request-scoped TraceSpan for every Nth score request while
  /// the trace recorder runs (0 = never). CLI: --trace-sample=N.
  uint64_t trace_sample = 0;
};

/// \brief Epoll TCP front-end over a ModelRouter. The router must
/// outlive the server.
class TcpScoringServer {
 public:
  TcpScoringServer(ModelRouter* router, TcpServerOptions options = {});

  /// Calls Shutdown().
  ~TcpScoringServer();

  TcpScoringServer(const TcpScoringServer&) = delete;
  TcpScoringServer& operator=(const TcpScoringServer&) = delete;

  /// Binds, listens and spawns the acceptor + reader threads. Returns
  /// immediately; clients may connect as soon as this returns OK.
  Status Start();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Blocks the calling thread until Shutdown() is called (from another
  /// thread or a signal-handling path).
  void Wait();

  /// Stops accepting, closes every connection, waits for in-flight
  /// batches to complete, joins all threads. Idempotent.
  void Shutdown();

  /// Live connections (diagnostics).
  size_t num_connections() const { return num_connections_.load(); }

 private:
  struct ResponseSlot {
    bool done = false;
    /// Score-request slot: record write/total stage times (and close the
    /// request trace span) when its bytes finish sending.
    bool timed = false;
    std::string line;  // response without trailing newline
    /// When the request line arrived off the wire (timed slots).
    std::chrono::steady_clock::time_point received{};
    /// When the outcome filled the slot (start of the write stage).
    std::chrono::steady_clock::time_point done_at{};
    uint64_t trace_span = 0;     // 0 = unsampled
    double trace_begin_us = 0.0;  // recorder-timebase arrival stamp
  };

  /// A flushed, timed response waiting for its bytes to clear the socket;
  /// `end_offset` is the absolute out-stream offset one past its newline.
  /// Reader-thread-only (like `out` itself).
  struct PendingWrite {
    uint64_t end_offset = 0;
    std::chrono::steady_clock::time_point received{};
    std::chrono::steady_clock::time_point done_at{};
    uint64_t trace_span = 0;
    double trace_begin_us = 0.0;
  };

  // One client connection. Socket I/O fields are owned by the reader
  // thread; the slot queue is shared with executor callbacks under
  // `mutex`. Held via shared_ptr so a callback can never outlive it.
  struct Connection {
    int fd = -1;
    size_t reader_index = 0;

    // -- reader-thread-only state --
    std::string in;                  // unconsumed request bytes
    std::string out;                 // response bytes not yet sent
    size_t out_pos = 0;              // sent prefix of `out`
    /// Absolute bytes ever appended to `out` (survives compaction), so a
    /// PendingWrite's end_offset can be compared against bytes sent.
    uint64_t out_appended = 0;
    std::deque<PendingWrite> write_log;  // timed responses in flight
    uint32_t interest = 0;           // epoll events currently registered
    bool paused = false;             // EPOLLIN off (backpressure)
    bool close_after_flush = false;  // quit/EOF/protocol error
    /// Last time this connection made I/O progress (adoption, bytes
    /// received, bytes sent). Only the owning reader reads or writes it,
    /// so the idle sweep needs no locking.
    std::chrono::steady_clock::time_point last_activity{};

    // -- shared state --
    std::mutex mutex;
    std::deque<ResponseSlot> slots;  // responses in request order
    bool closed = false;             // socket gone; callbacks drop
    std::atomic<bool> dirty{false};  // queued on the reader's dirty list
  };

  // One reader event loop: an epoll fd over this reader's connections
  // plus an eventfd for cross-thread wakeups (new connections from the
  // acceptor, completed slots from executor callbacks, shutdown).
  struct Reader {
    size_t index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex mutex;            // guards incoming + dirty
    std::vector<int> incoming;   // fds handed over by the acceptor
    std::vector<std::shared_ptr<Connection>> dirty;
    std::unordered_map<int, std::shared_ptr<Connection>> conns;
  };

  void AcceptLoop();
  void ReaderLoop(size_t reader_index);

  /// Queues `conn` on its reader's dirty list and wakes the reader.
  /// Safe from any thread.
  void MarkDirty(const std::shared_ptr<Connection>& conn);
  void WakeReader(Reader& reader);

  // All of the below run on the connection's owning reader thread.
  void AdoptConnection(Reader& reader, int fd);
  void HandleReadable(Reader& reader, const std::shared_ptr<Connection>& c);
  void ProcessInput(const std::shared_ptr<Connection>& conn,
                    std::chrono::steady_clock::time_point received);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  std::string_view line,
                  std::chrono::steady_clock::time_point received);
  void HandleSwap(const std::shared_ptr<Connection>& conn,
                  const ServeRequest& request);
  void HandleStats(const std::shared_ptr<Connection>& conn);
  void HandleMetrics(const std::shared_ptr<Connection>& conn);
  /// Appends an already-final response line in arrival order.
  void PushImmediate(const std::shared_ptr<Connection>& conn,
                     std::string line);
  /// Moves completed slots into the write buffer and writes what the
  /// socket accepts; updates epoll interest and closes drained
  /// connections marked close_after_flush.
  void FlushConnection(Reader& reader,
                       const std::shared_ptr<Connection>& conn);
  void UpdateInterest(Reader& reader,
                      const std::shared_ptr<Connection>& conn);
  void CloseConnection(Reader& reader,
                       const std::shared_ptr<Connection>& conn);
  /// Closes every connection on this reader whose last_activity is older
  /// than idle_timeout_s. Runs on the owning reader thread only.
  void ReapIdle(Reader& reader);

  ModelRouter* router_;
  TcpServerOptions options_;
  RequestTraceSampler trace_sampler_;

  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;
  int accept_epoll_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Reader>> readers_;
  std::atomic<size_t> next_reader_{0};
  std::atomic<size_t> num_connections_{0};
  std::atomic<bool> stopping_{false};

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace telco

#endif  // TELCO_SERVE_TCP_SERVER_H_
