#include "serve/model_router.h"

#include <utility>

#include "common/telemetry/metrics.h"

namespace telco {

namespace {

Status UnknownRoute(const std::string& name) {
  return Status::NotFound(
      name.empty()
          ? std::string("no default model published; publish one or name "
                        "a model with \"model\":\"...\"")
          : "unknown model \"" + name + "\"; publish it before scoring");
}

}  // namespace

ModelRouter::ModelRouter(ModelRouterOptions options)
    : options_(options) {}

ModelRouter::Route* ModelRouter::FindRoute(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = routes_.find(name);
  return it == routes_.end() ? nullptr : it->second.get();
}

uint64_t ModelRouter::Publish(const std::string& name,
                              std::shared_ptr<const ModelSnapshot> snapshot,
                              std::optional<ForestEngine> engine) {
  static const Gauge route_count =
      MetricsRegistry::Global().GetGauge("serve.router.routes");
  Route* route;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Route>& slot = routes_[name];
    if (slot == nullptr) {
      // Label the route's executor so it records per-route latency
      // quantiles ("" is shown as "default", matching the stats verb).
      ScoringExecutorOptions executor_options = options_.executor;
      executor_options.route_name = name.empty() ? "default" : name;
      executor_options.engine = engine;
      slot = std::make_unique<Route>(executor_options);
      route_count.Set(static_cast<double>(routes_.size()));
    } else if (engine.has_value()) {
      // Republish with an explicit engine re-pins the existing route;
      // nullopt leaves its current choice alone.
      slot->executor.SetEngine(*engine);
    }
    route = slot.get();
  }
  // Publish outside the router lock: the registry has its own, and a slow
  // publish must not block routing on other models.
  return route->registry.Publish(std::move(snapshot));
}

Result<std::future<ScoreOutcome>> ModelRouter::Submit(
    ScoreRequest request, RequestTelemetry telemetry) {
  Route* route = FindRoute(request.model);
  if (route == nullptr) return UnknownRoute(request.model);
  return route->executor.Submit(std::move(request), telemetry);
}

Status ModelRouter::SubmitWithCallback(
    ScoreRequest request, std::function<void(ScoreOutcome)> done,
    RequestTelemetry telemetry) {
  Route* route = FindRoute(request.model);
  if (route == nullptr) return UnknownRoute(request.model);
  return route->executor.SubmitWithCallback(std::move(request),
                                            std::move(done), telemetry);
}

Result<SnapshotRegistry*> ModelRouter::RouteRegistry(
    const std::string& name) const {
  Route* route = FindRoute(name);
  if (route == nullptr) return UnknownRoute(name);
  return &route->registry;
}

bool ModelRouter::HasRoute(const std::string& name) const {
  return FindRoute(name) != nullptr;
}

std::vector<std::string> ModelRouter::RouteNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(routes_.size());
  for (const auto& [name, _] : routes_) names.push_back(name);
  return names;
}

std::vector<ModelRouter::RouteStats> ModelRouter::Stats() const {
  // Route pointers are stable for the router's lifetime, so collect them
  // under the lock and read each route outside it (Acquire and
  // queue_depth take their own locks; holding ours across them would
  // serialize stats against routing).
  std::vector<std::pair<std::string, Route*>> routes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    routes.reserve(routes_.size());
    for (const auto& [name, route] : routes_) {
      routes.emplace_back(name, route.get());
    }
  }
  std::vector<RouteStats> stats;
  stats.reserve(routes.size());
  for (const auto& [name, route] : routes) {
    RouteStats entry;
    entry.name = name;
    const SnapshotRef ref = route->registry.Acquire();
    entry.snapshot_version = ref.version;
    if (ref.snapshot != nullptr) {
      entry.label = ref.snapshot->label();
      entry.fingerprint = ref.snapshot->fingerprint();
    }
    entry.engine = ForestEngineName(
        route->executor.engine().value_or(DefaultForestEngine()));
    entry.queue_depth = route->executor.queue_depth();
    entry.scored = route->executor.completed_requests();
    entry.rejected = route->executor.rejected_requests();
    stats.push_back(std::move(entry));
  }
  return stats;
}

void ModelRouter::DrainAll() {
  // Snapshot the route pointers under the lock, drain outside it (Drain
  // blocks; route pointers are stable).
  std::vector<Route*> routes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    routes.reserve(routes_.size());
    for (const auto& [_, route] : routes_) routes.push_back(route.get());
  }
  for (Route* route : routes) route->executor.Drain();
}

}  // namespace telco
