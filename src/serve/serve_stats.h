// Shared JSON builders for the serve front-ends' observability verbs.
//
// The TCP and stdio servers answer the same `stats` and `metrics` wire
// verbs; the response bodies are built here once so the two front-ends
// cannot drift (they did, until PR 8). `stats` is the human-sized
// summary — executor counters plus p50/p99/p999 and the per-stage
// quantile block; `metrics` is the full MetricsRegistry snapshot in the
// run-report JSON schema.

#ifndef TELCO_SERVE_SERVE_STATS_H_
#define TELCO_SERVE_SERVE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/telemetry/metrics.h"
#include "serve/model_router.h"

namespace telco {

/// Front-end-side stage histograms, shared by the TCP and stdio servers
/// (queue_wait and score are recorded inside ScoringExecutor). All
/// log-bucketed, all in seconds.
struct ServeStageHistograms {
  Histogram parse_seconds;   // wire line -> parsed request
  Histogram write_seconds;   // outcome ready -> response bytes flushed
  Histogram total_seconds;   // wire line read -> response bytes flushed
};
const ServeStageHistograms& StageHistograms();

/// The shared interior of a `stats` response (no braces, no leading
/// comma): `"requests":..,"batches":..,"rejected":..,"p50_ms":..,
/// "p99_ms":..,"p999_ms":..,"stages":{...}`. The stages object maps
/// parse/queue_wait/score/write/total to per-stage p50/p99/p999
/// milliseconds from the serve.request.*_seconds log histograms.
std::string ServeStatsCoreJson(const MetricsSnapshot& metrics);

/// One route's entry for the TCP stats "models" array, including the
/// route's own latency quantiles (serve.route.<name>.latency_seconds).
std::string RouteStatsJson(const ModelRouter::RouteStats& route,
                           const MetricsSnapshot& metrics);

/// The full `metrics` verb response line (no trailing newline):
/// {"cmd":"metrics","metrics":[...]} with the snapshot's ToJson array.
std::string MetricsResponseJson(const MetricsSnapshot& metrics);

/// \brief Decides which score requests get a request-scoped TraceSpan:
/// every Nth request while the trace recorder is running (--trace-sample).
/// Thread-safe; shared by all reader threads of a server.
class RequestTraceSampler {
 public:
  /// sample_every == 0 disables sampling entirely.
  explicit RequestTraceSampler(uint64_t sample_every)
      : sample_every_(sample_every) {}

  /// Returns a freshly allocated span id for a sampled request, or 0.
  /// The caller owns closing the span via TraceRecorder::AppendCompleted.
  uint64_t Sample();

 private:
  const uint64_t sample_every_;
  std::atomic<uint64_t> counter_{0};
};

}  // namespace telco

#endif  // TELCO_SERVE_SERVE_STATS_H_
