#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/json.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"
#include "serve/model_snapshot.h"

namespace telco {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

Counter AcceptedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.accepted");
  return counter;
}

Counter ClosedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.closed");
  return counter;
}

Counter ShedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.shed");
  return counter;
}

Counter OversizedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.oversized_lines");
  return counter;
}

Counter PausedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.read_pauses");
  return counter;
}

Counter IdleReapedCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.tcp.idle_reaped");
  return counter;
}

}  // namespace

TcpScoringServer::TcpScoringServer(ModelRouter* router,
                                   TcpServerOptions options)
    : router_(router), options_(options),
      trace_sampler_(options.trace_sample) {
  TELCO_CHECK(router_ != nullptr);
  options_.readers = std::max<size_t>(1, options_.readers);
  options_.write_low_watermark =
      std::min(options_.write_low_watermark, options_.write_high_watermark);
  if (options_.max_line_bytes == 0) {
    options_.max_line_bytes = kMaxRequestLineBytes;
  }
}

TcpScoringServer::~TcpScoringServer() { Shutdown(); }

Status TcpScoringServer::Start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (started_) return Status::Internal("TcpScoringServer already started");
  }
  // A dropped client must cost us one connection, not the process: with
  // SIGPIPE ignored (and MSG_NOSIGNAL on every send) a write to a closed
  // peer fails with EPIPE and we close that connection.
  std::signal(SIGPIPE, SIG_IGN);

  const auto fail = [this](std::string what) {
    Status status = Status::IoError(std::move(what) + ": " +
                                    std::strerror(errno));
    CloseFd(listen_fd_);
    CloseFd(accept_epoll_fd_);
    CloseFd(accept_wake_fd_);
    for (const auto& reader : readers_) {
      CloseFd(reader->epoll_fd);
      CloseFd(reader->wake_fd);
    }
    readers_.clear();
    return status;
  };

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("cannot create listen socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    return Status::InvalidArgument("invalid bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(StrFormat("cannot bind %s:%d", options_.bind_address.c_str(),
                          options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return fail("cannot listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname failed");
  }
  port_ = ntohs(bound.sin_port);

  accept_epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  accept_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_epoll_fd_ < 0 || accept_wake_fd_ < 0) {
    return fail("cannot create acceptor epoll/eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail("cannot register listen socket");
  }
  ev.data.fd = accept_wake_fd_;
  if (::epoll_ctl(accept_epoll_fd_, EPOLL_CTL_ADD, accept_wake_fd_, &ev) !=
      0) {
    return fail("cannot register acceptor wake eventfd");
  }

  readers_.reserve(options_.readers);
  for (size_t i = 0; i < options_.readers; ++i) {
    auto reader = std::make_unique<Reader>();
    reader->index = i;
    reader->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    reader->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (reader->epoll_fd < 0 || reader->wake_fd < 0) {
      readers_.push_back(std::move(reader));
      return fail("cannot create reader epoll/eventfd");
    }
    epoll_event wake{};
    wake.events = EPOLLIN;
    wake.data.fd = reader->wake_fd;
    if (::epoll_ctl(reader->epoll_fd, EPOLL_CTL_ADD, reader->wake_fd,
                    &wake) != 0) {
      readers_.push_back(std::move(reader));
      return fail("cannot register reader wake eventfd");
    }
    readers_.push_back(std::move(reader));
  }
  for (size_t i = 0; i < readers_.size(); ++i) {
    readers_[i]->thread =
        std::thread([this, i]() { ReaderLoop(i); });
  }
  acceptor_ = std::thread([this]() { AcceptLoop(); });

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    started_ = true;
  }
  TELCO_LOG(Info) << "tcp scoring server listening on "
                  << options_.bind_address << ":" << port_ << " with "
                  << readers_.size() << " reader(s)";
  return Status::OK();
}

void TcpScoringServer::Wait() {
  std::unique_lock<std::mutex> lock(state_mutex_);
  state_cv_.wait(lock, [this]() { return stopped_; });
}

void TcpScoringServer::Shutdown() {
  if (stopping_.exchange(true)) {
    // Another thread is (or finished) shutting down; wait it out.
    std::unique_lock<std::mutex> lock(state_mutex_);
    state_cv_.wait(lock, [this]() { return stopped_; });
    return;
  }
  bool was_started;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    was_started = started_;
  }
  if (was_started) {
    // Stop the acceptor first so no new connection arrives mid-teardown,
    // then the readers (each closes its connections on the way out).
    uint64_t one = 1;
    while (::write(accept_wake_fd_, &one, sizeof(one)) < 0 &&
           errno == EINTR) {
    }
    acceptor_.join();
    for (const auto& reader : readers_) WakeReader(*reader);
    for (const auto& reader : readers_) reader->thread.join();
    // Every connection is closed, so no new submit can happen; draining
    // the router runs every in-flight completion callback, after which
    // nothing can touch reader state again and the fds can go away.
    router_->DrainAll();
    for (const auto& reader : readers_) {
      CloseFd(reader->epoll_fd);
      CloseFd(reader->wake_fd);
    }
    CloseFd(listen_fd_);
    CloseFd(accept_epoll_fd_);
    CloseFd(accept_wake_fd_);
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    stopped_ = true;
  }
  state_cv_.notify_all();
}

void TcpScoringServer::WakeReader(Reader& reader) {
  uint64_t one = 1;
  while (::write(reader.wake_fd, &one, sizeof(one)) < 0 && errno == EINTR) {
  }
}

void TcpScoringServer::MarkDirty(const std::shared_ptr<Connection>& conn) {
  // Collapse repeated completions into one wakeup per drain cycle.
  if (conn->dirty.exchange(true)) return;
  Reader& reader = *readers_[conn->reader_index];
  {
    std::lock_guard<std::mutex> lock(reader.mutex);
    reader.dirty.push_back(conn);
  }
  WakeReader(reader);
}

void TcpScoringServer::AcceptLoop() {
  epoll_event events[8];
  for (;;) {
    const int n = ::epoll_wait(accept_epoll_fd_, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      TELCO_LOG(Error) << "acceptor epoll_wait failed: "
                       << std::strerror(errno);
      return;
    }
    bool listen_ready = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == accept_wake_fd_) {
        uint64_t drained;
        while (::read(accept_wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        listen_ready = true;
      }
    }
    if (stopping_.load()) return;
    if (!listen_ready) continue;
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        TELCO_LOG(Warning) << "accept failed: " << std::strerror(errno);
        break;
      }
      if (num_connections_.load() >= options_.max_connections) {
        // Shed at the door: past the connection cap the kindest failure
        // is an immediate close, not a half-served session.
        ShedCounter().Add();
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      num_connections_.fetch_add(1);
      AcceptedCounter().Add();
      Reader& reader =
          *readers_[next_reader_.fetch_add(1) % readers_.size()];
      {
        std::lock_guard<std::mutex> lock(reader.mutex);
        reader.incoming.push_back(fd);
      }
      WakeReader(reader);
    }
  }
}

void TcpScoringServer::ReaderLoop(size_t reader_index) {
  Reader& reader = *readers_[reader_index];
  epoll_event events[64];
  // With the idle reaper on, epoll_wait must return periodically even
  // when no fd fires — that tick is what catches a client that connects
  // and then sends nothing. A quarter of the timeout bounds reap lag at
  // 1.25x the configured idle time.
  const int wait_ms =
      options_.idle_timeout_s > 0
          ? std::clamp(options_.idle_timeout_s * 250, 50, 30'000)
          : -1;
  bool stop = false;
  while (!stop) {
    const int n = ::epoll_wait(reader.epoll_fd, events, 64, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      TELCO_LOG(Error) << "reader epoll_wait failed: "
                       << std::strerror(errno);
      break;
    }
    if (options_.idle_timeout_s > 0) ReapIdle(reader);
    bool woke = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == reader.wake_fd) {
        uint64_t drained;
        while (::read(reader.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        woke = true;
        continue;
      }
      const auto it = reader.conns.find(events[i].data.fd);
      if (it == reader.conns.end()) continue;  // closed earlier this wake
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        HandleReadable(reader, conn);
      }
      if (conn->fd >= 0 && (events[i].events & EPOLLOUT)) {
        FlushConnection(reader, conn);
      }
    }
    if (woke) {
      if (stopping_.load()) {
        stop = true;
        break;
      }
      std::vector<int> incoming;
      std::vector<std::shared_ptr<Connection>> dirty;
      {
        std::lock_guard<std::mutex> lock(reader.mutex);
        incoming.swap(reader.incoming);
        dirty.swap(reader.dirty);
      }
      for (const int fd : incoming) AdoptConnection(reader, fd);
      for (const auto& conn : dirty) {
        // Clear the flag before flushing: a completion landing during
        // the flush re-queues the connection instead of being lost.
        conn->dirty.store(false);
        if (conn->fd >= 0) FlushConnection(reader, conn);
      }
    }
  }
  // Teardown: close everything this reader owns. Late executor callbacks
  // see closed=true and drop their responses.
  std::vector<std::shared_ptr<Connection>> all;
  all.reserve(reader.conns.size());
  for (const auto& [fd, conn] : reader.conns) all.push_back(conn);
  for (const auto& conn : all) CloseConnection(reader, conn);
  // Adopt-then-close any connection the acceptor handed over after the
  // last drain, so its fd does not leak.
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(reader.mutex);
    incoming.swap(reader.incoming);
    reader.dirty.clear();
  }
  for (const int fd : incoming) {
    ::close(fd);
    num_connections_.fetch_sub(1);
  }
}

void TcpScoringServer::AdoptConnection(Reader& reader, int fd) {
  auto conn = std::make_shared<Connection>();
  conn->fd = fd;
  conn->reader_index = reader.index;
  conn->last_activity = std::chrono::steady_clock::now();
  conn->interest = EPOLLIN | EPOLLRDHUP;
  epoll_event ev{};
  ev.events = conn->interest;
  ev.data.fd = fd;
  if (::epoll_ctl(reader.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    TELCO_LOG(Warning) << "cannot register connection: "
                       << std::strerror(errno);
    ::close(fd);
    num_connections_.fetch_sub(1);
    return;
  }
  reader.conns.emplace(fd, std::move(conn));
}

void TcpScoringServer::HandleReadable(
    Reader& reader, const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      const auto received = std::chrono::steady_clock::now();
      conn->last_activity = received;
      conn->in.append(buf, static_cast<size_t>(n));
      ProcessInput(conn, received);
      FlushConnection(reader, conn);
      // Flush may have closed (write error / quit drained) or paused the
      // connection; in either case stop pulling more input.
      if (conn->fd < 0 || conn->paused || conn->close_after_flush) return;
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // EOF. The client may have shut down its write side and still be
      // reading responses (send-all-then-drain pattern): finish what is
      // owed, then close. An unterminated trailing line is processed the
      // way getline treats a final line without '\n'.
      if (!conn->in.empty()) {
        const std::string last = std::move(conn->in);
        conn->in.clear();
        HandleLine(conn, last, std::chrono::steady_clock::now());
      }
      conn->close_after_flush = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // ECONNRESET and friends: the peer is gone; nothing to flush to.
    CloseConnection(reader, conn);
    return;
  }
  FlushConnection(reader, conn);
}

void TcpScoringServer::ProcessInput(
    const std::shared_ptr<Connection>& conn,
    std::chrono::steady_clock::time_point received) {
  size_t start = 0;
  while (!conn->close_after_flush) {
    const size_t pos = conn->in.find('\n', start);
    if (pos == std::string::npos) break;
    const std::string_view line(conn->in.data() + start, pos - start);
    if (!line.empty()) HandleLine(conn, line, received);
    start = pos + 1;
  }
  conn->in.erase(0, start);
  if (!conn->close_after_flush &&
      conn->in.size() > options_.max_line_bytes) {
    // An unterminated over-long line means framing is lost: answer once,
    // drop the buffer and close instead of buffering without bound.
    OversizedCounter().Add();
    PushImmediate(
        conn,
        FormatErrorResponse(
            0, Status::InvalidArgument(StrFormat(
                   "unterminated request line exceeds the %zu-byte limit; "
                   "closing connection",
                   options_.max_line_bytes))));
    conn->in.clear();
    conn->in.shrink_to_fit();
    conn->close_after_flush = true;
  }
}

void TcpScoringServer::HandleLine(
    const std::shared_ptr<Connection>& conn, std::string_view line,
    std::chrono::steady_clock::time_point received) {
  const auto parse_begin = std::chrono::steady_clock::now();
  Result<ServeRequest> parsed = ParseServeRequest(line);
  StageHistograms().parse_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    parse_begin)
          .count());
  if (!parsed.ok()) {
    PushImmediate(conn, FormatErrorResponse(0, parsed.status()));
    return;
  }
  ServeRequest request = std::move(parsed).ValueOrDie();
  switch (request.type) {
    case ServeRequestType::kScore: {
      ScoreRequest score = std::move(request.score);
      const uint64_t id = score.id;
      const int64_t imsi = score.imsi;
      const std::string model = score.model;
      RequestTelemetry telemetry;
      telemetry.received = received;
      telemetry.trace_span = trace_sampler_.Sample();
      // The slot is appended before the submit so the response keeps its
      // arrival position no matter when the callback fires. Slot
      // pointers are stable: a deque never relocates elements on
      // push_back/pop_front, and a slot is only popped once done.
      ResponseSlot* slot;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->slots.emplace_back();
        slot = &conn->slots.back();
        slot->timed = true;
        slot->received = received;
        slot->trace_span = telemetry.trace_span;
        if (slot->trace_span != 0) {
          // Root span begins at wire arrival: shift the recorder's
          // current reading back by the time elapsed since `received`.
          slot->trace_begin_us =
              TraceRecorder::Global().NowMicros() -
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - received)
                  .count();
        }
      }
      const Status submitted = router_->SubmitWithCallback(
          std::move(score),
          [this, conn, slot, id, imsi, model](ScoreOutcome outcome) {
            ScoreRequest header;
            header.id = id;
            header.imsi = imsi;
            header.model = model;
            std::string response = FormatScoreResponse(header, outcome);
            bool notify;
            {
              std::lock_guard<std::mutex> lock(conn->mutex);
              slot->line = std::move(response);
              slot->done_at = std::chrono::steady_clock::now();
              slot->done = true;
              notify = !conn->closed;
            }
            if (notify) MarkDirty(conn);
          },
          telemetry);
      if (!submitted.ok()) {
        // Unknown route, shutdown, or admission-queue overload (the
        // Unavailable + retry:true shed path) — answer in place.
        std::lock_guard<std::mutex> lock(conn->mutex);
        slot->line = FormatErrorResponse(id, submitted);
        slot->done_at = std::chrono::steady_clock::now();
        slot->done = true;
      }
      break;
    }
    case ServeRequestType::kSwap:
      HandleSwap(conn, request);
      break;
    case ServeRequestType::kStats:
      HandleStats(conn);
      break;
    case ServeRequestType::kMetrics:
      HandleMetrics(conn);
      break;
    case ServeRequestType::kQuit:
      conn->close_after_flush = true;
      break;
  }
}

void TcpScoringServer::HandleSwap(const std::shared_ptr<Connection>& conn,
                                  const ServeRequest& request) {
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      ModelSnapshot::LoadFromFile(request.model_path);
  if (!snapshot.ok()) {
    PushImmediate(
        conn, StrFormat("{\"cmd\":\"swap\",\"ok\":false,\"error\":\"%s\"}",
                        JsonEscape(snapshot.status().ToString()).c_str()));
    return;
  }
  const uint32_t fingerprint = (*snapshot)->fingerprint();
  const uint64_t version = router_->Publish(
      request.model_name, std::move(snapshot).ValueOrDie());
  const std::string name_member =
      request.model_name.empty()
          ? std::string()
          : StrFormat("\"name\":\"%s\",",
                      JsonEscape(request.model_name).c_str());
  PushImmediate(
      conn,
      StrFormat("{\"cmd\":\"swap\",\"ok\":true,\"snapshot\":%llu,"
                "\"model\":\"%s\",%s\"fingerprint\":\"%08x\"}",
                static_cast<unsigned long long>(version),
                JsonEscape(request.model_path).c_str(), name_member.c_str(),
                fingerprint));
}

void TcpScoringServer::HandleStats(const std::shared_ptr<Connection>& conn) {
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  std::string models;
  for (const ModelRouter::RouteStats& route : router_->Stats()) {
    if (!models.empty()) models += ',';
    models += RouteStatsJson(route, metrics);
  }
  PushImmediate(
      conn,
      StrFormat("{\"cmd\":\"stats\",\"models\":[%s],\"connections\":%zu,%s}",
                models.c_str(), num_connections_.load(),
                ServeStatsCoreJson(metrics).c_str()));
}

void TcpScoringServer::HandleMetrics(
    const std::shared_ptr<Connection>& conn) {
  PushImmediate(conn,
                MetricsResponseJson(MetricsRegistry::Global().Snapshot()));
}

void TcpScoringServer::PushImmediate(const std::shared_ptr<Connection>& conn,
                                     std::string line) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  conn->slots.emplace_back();
  conn->slots.back().line = std::move(line);
  conn->slots.back().done = true;
}

void TcpScoringServer::FlushConnection(
    Reader& reader, const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    while (!conn->slots.empty() && conn->slots.front().done) {
      const ResponseSlot& slot = conn->slots.front();
      conn->out += slot.line;
      conn->out += '\n';
      conn->out_appended += slot.line.size() + 1;
      if (slot.timed) {
        PendingWrite pending;
        pending.end_offset = conn->out_appended;
        pending.received = slot.received;
        pending.done_at = slot.done_at;
        pending.trace_span = slot.trace_span;
        pending.trace_begin_us = slot.trace_begin_us;
        conn->write_log.push_back(pending);
      }
      conn->slots.pop_front();
    }
  }
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_pos,
               conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
    if (n >= 0) {
      // A client draining its responses is making progress; only actual
      // bytes moved reset the idle clock.
      if (n > 0) conn->last_activity = std::chrono::steady_clock::now();
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    // EPIPE/ECONNRESET: clean per-connection shutdown, never SIGPIPE.
    CloseConnection(reader, conn);
    return;
  }
  // Responses whose bytes have fully cleared the socket complete their
  // write and total stages. `out_appended` is an absolute offset so this
  // comparison survives the compaction below.
  if (!conn->write_log.empty()) {
    const uint64_t absolute_sent =
        conn->out_appended - (conn->out.size() - conn->out_pos);
    const auto now = std::chrono::steady_clock::now();
    const ServeStageHistograms& stages = StageHistograms();
    while (!conn->write_log.empty() &&
           conn->write_log.front().end_offset <= absolute_sent) {
      const PendingWrite& done = conn->write_log.front();
      stages.write_seconds.Observe(
          std::chrono::duration<double>(now - done.done_at).count());
      stages.total_seconds.Observe(
          std::chrono::duration<double>(now - done.received).count());
      if (done.trace_span != 0) {
        TraceRecorder& recorder = TraceRecorder::Global();
        const double now_us = recorder.NowMicros();
        const double write_begin_us =
            now_us - std::chrono::duration<double, std::micro>(
                         now - done.done_at)
                         .count();
        recorder.AppendCompleted("serve.request.write", 0, done.trace_span,
                                 write_begin_us, now_us);
        recorder.AppendCompleted("serve.request", done.trace_span, 0,
                                 done.trace_begin_us, now_us);
      }
      conn->write_log.pop_front();
    }
  }
  if (conn->out_pos == conn->out.size()) {
    conn->out.clear();
    conn->out_pos = 0;
  } else if (conn->out_pos > (64u << 10)) {
    conn->out.erase(0, conn->out_pos);
    conn->out_pos = 0;
  }
  bool slots_empty;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    slots_empty = conn->slots.empty();
  }
  if (conn->close_after_flush && slots_empty && conn->out.empty()) {
    CloseConnection(reader, conn);
    return;
  }
  UpdateInterest(reader, conn);
}

void TcpScoringServer::UpdateInterest(
    Reader& reader, const std::shared_ptr<Connection>& conn) {
  const size_t pending = conn->out.size() - conn->out_pos;
  if (!conn->paused && pending >= options_.write_high_watermark) {
    // Backpressure: a client that will not drain its responses stops
    // being read until it does — its memory cost stays bounded.
    conn->paused = true;
    PausedCounter().Add();
  } else if (conn->paused && pending <= options_.write_low_watermark) {
    conn->paused = false;
  }
  uint32_t interest = 0;
  if (!conn->paused && !conn->close_after_flush) {
    interest = EPOLLIN | EPOLLRDHUP;
  }
  if (pending > 0) interest |= EPOLLOUT;
  if (interest == conn->interest) return;
  epoll_event ev{};
  ev.events = interest;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(reader.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->interest = interest;
  }
}

void TcpScoringServer::ReapIdle(Reader& reader) {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::seconds(options_.idle_timeout_s);
  // CloseConnection erases from reader.conns, so collect victims first.
  std::vector<std::shared_ptr<Connection>> idle;
  for (const auto& [fd, conn] : reader.conns) {
    if (now - conn->last_activity > limit) idle.push_back(conn);
  }
  for (const auto& conn : idle) {
    IdleReapedCounter().Add();
    TELCO_LOG(Info) << "reaping connection idle for more than "
                    << options_.idle_timeout_s << "s";
    CloseConnection(reader, conn);
  }
}

void TcpScoringServer::CloseConnection(
    Reader& reader, const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  {
    // After this, executor callbacks still fill their slots but no
    // longer wake anyone; the shared_ptr keeps the slot storage alive
    // until the last callback has run.
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->closed = true;
  }
  ::epoll_ctl(reader.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  reader.conns.erase(conn->fd);
  conn->fd = -1;
  num_connections_.fetch_sub(1);
  ClosedCounter().Add();
}

}  // namespace telco
