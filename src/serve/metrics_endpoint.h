// MetricsHttpEndpoint: the Prometheus scrape port of the serving stack.
//
// `telcochurn serve ... --metrics-port P` binds a second, tiny HTTP
// listener whose only job is answering GET scrapes with the process-wide
// MetricsRegistry snapshot rendered as Prometheus text (prometheus.h).
// It is deliberately not part of the epoll data plane: scrapes arrive a
// few times a minute, so one blocking thread that serves connections
// sequentially is simpler, isolated from the scoring hot path, and
// cannot interleave with response ordering. Any request line gets the
// same 200 text/plain snapshot; this is an exposition endpoint, not a
// web server.
//
// Linux-only (eventfd wakeup for shutdown), like the TCP front-end.

#ifndef TELCO_SERVE_METRICS_ENDPOINT_H_
#define TELCO_SERVE_METRICS_ENDPOINT_H_

#include <string>
#include <thread>

#include "common/result.h"
#include "common/telemetry/metrics.h"

namespace telco {

struct MetricsEndpointOptions {
  /// Port to bind (0 = ephemeral; read the real one from port()).
  int port = 0;
  /// Default loopback, same reasoning as the scoring port.
  std::string bind_address = "127.0.0.1";
  /// Registry to expose. Defaults to MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
};

/// \brief Plaintext Prometheus exposition endpoint on its own thread.
class MetricsHttpEndpoint {
 public:
  explicit MetricsHttpEndpoint(MetricsEndpointOptions options = {});

  /// Calls Stop().
  ~MetricsHttpEndpoint();

  MetricsHttpEndpoint(const MetricsHttpEndpoint&) = delete;
  MetricsHttpEndpoint& operator=(const MetricsHttpEndpoint&) = delete;

  /// Binds, listens and spawns the serving thread.
  Status Start();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Closes the listener and joins the thread. Idempotent.
  void Stop();

 private:
  void Loop();
  void ServeOne(int client_fd);

  MetricsEndpointOptions options_;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace telco

#endif  // TELCO_SERVE_METRICS_ENDPOINT_H_
