#include "serve/metrics_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/prometheus.h"

namespace telco {

namespace {

void CloseFd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

Counter ScrapeCounter() {
  static const Counter counter =
      MetricsRegistry::Global().GetCounter("serve.metrics.scrapes");
  return counter;
}

}  // namespace

MetricsHttpEndpoint::MetricsHttpEndpoint(MetricsEndpointOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
}

MetricsHttpEndpoint::~MetricsHttpEndpoint() { Stop(); }

Status MetricsHttpEndpoint::Start() {
  if (started_) {
    return Status::Internal("MetricsHttpEndpoint already started");
  }
  std::signal(SIGPIPE, SIG_IGN);

  const auto fail = [this](std::string what) {
    Status status =
        Status::IoError(std::move(what) + ": " + std::strerror(errno));
    CloseFd(listen_fd_);
    CloseFd(wake_fd_);
    return status;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("cannot create metrics socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    CloseFd(listen_fd_);
    return Status::InvalidArgument("invalid metrics bind address \"" +
                                   options_.bind_address + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail(StrFormat("cannot bind metrics port %s:%d",
                          options_.bind_address.c_str(), options_.port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("cannot listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname failed on metrics port");
  }
  port_ = ntohs(bound.sin_port);

  wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (wake_fd_ < 0) return fail("cannot create metrics wake eventfd");

  thread_ = std::thread([this]() { Loop(); });
  started_ = true;
  TELCO_LOG(Info) << "metrics endpoint listening on "
                  << options_.bind_address << ":" << port_;
  return Status::OK();
}

void MetricsHttpEndpoint::Stop() {
  if (!started_) {
    CloseFd(listen_fd_);
    CloseFd(wake_fd_);
    return;
  }
  started_ = false;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  CloseFd(listen_fd_);
  CloseFd(wake_fd_);
}

void MetricsHttpEndpoint::Loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      TELCO_LOG(Warning) << "metrics endpoint poll failed: "
                         << std::strerror(errno);
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      TELCO_LOG(Warning) << "metrics endpoint accept failed: "
                         << std::strerror(errno);
      return;
    }
    ServeOne(client);
    ::close(client);
  }
}

void MetricsHttpEndpoint::ServeOne(int client_fd) {
  // A scraper that neither finishes its request nor reads the response
  // within a couple of seconds forfeits this scrape; timeouts keep one
  // stuck client from wedging the (single-threaded) endpoint.
  timeval timeout{2, 0};
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(client_fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  // Read until the blank line that ends the HTTP request head. The
  // request itself is ignored — every path serves the same snapshot —
  // but reading it first avoids resetting clients that see the response
  // before they finish sending.
  std::string head;
  char buf[1024];
  while (head.size() < 4096 && head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n > 0) {
      head.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 && !head.empty()) break;  // header-only request, no blank line
    return;  // timeout or error before any request arrived
  }

  const std::string body = ToPrometheusText(options_.registry->Snapshot());
  std::string response =
      StrFormat("HTTP/1.0 200 OK\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                body.size());
  response += body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::send(client_fd, response.data() + sent,
                             response.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer gone or send timeout; drop this scrape
  }
  ScrapeCounter().Add();
}

}  // namespace telco
