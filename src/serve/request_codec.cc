#include "serve/request_codec.h"

#include <cmath>
#include <cstdint>

#include "common/string_util.h"
#include "common/telemetry/json.h"

namespace telco {

namespace {

// Ids and imsis travel as JSON numbers; reject anything that is not an
// integral value representable without loss.
Result<int64_t> IntegralMember(const JsonValue& object, const std::string& key,
                               bool required, int64_t fallback) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    if (required) {
      return Status::InvalidArgument("request is missing \"" + key + "\"");
    }
    return fallback;
  }
  if (member->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("request member \"" + key +
                                   "\" must be a number");
  }
  const double value = member->number;
  if (!std::isfinite(value) || value != std::floor(value) ||
      std::abs(value) > 9.007199254740992e15) {  // 2^53
    return Status::InvalidArgument("request member \"" + key +
                                   "\" must be an integral number");
  }
  return static_cast<int64_t>(value);
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  TELCO_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request line must be a JSON object");
  }

  ServeRequest request;
  if (const JsonValue* cmd = doc.Find("cmd"); cmd != nullptr) {
    if (cmd->type != JsonValue::Type::kString) {
      return Status::InvalidArgument("\"cmd\" must be a string");
    }
    if (cmd->string == "swap") {
      const JsonValue* model = doc.Find("model");
      if (model == nullptr || model->type != JsonValue::Type::kString ||
          model->string.empty()) {
        return Status::InvalidArgument(
            "swap command requires a \"model\" path string");
      }
      request.type = ServeRequestType::kSwap;
      request.model_path = model->string;
      return request;
    }
    if (cmd->string == "stats") {
      request.type = ServeRequestType::kStats;
      return request;
    }
    if (cmd->string == "quit") {
      request.type = ServeRequestType::kQuit;
      return request;
    }
    return Status::InvalidArgument("unknown command \"" + cmd->string + "\"");
  }

  request.type = ServeRequestType::kScore;
  TELCO_ASSIGN_OR_RETURN(const int64_t id,
                         IntegralMember(doc, "id", /*required=*/true, 0));
  if (id < 0) {
    return Status::InvalidArgument("request \"id\" must be >= 0");
  }
  request.score.id = static_cast<uint64_t>(id);
  TELCO_ASSIGN_OR_RETURN(request.score.imsi,
                         IntegralMember(doc, "imsi", /*required=*/false, 0));
  const JsonValue* features = doc.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument(
        "score request requires a \"features\" array");
  }
  request.score.features.reserve(features->items.size());
  for (const JsonValue& item : features->items) {
    if (item.type != JsonValue::Type::kNumber) {
      return Status::InvalidArgument("\"features\" must contain only numbers");
    }
    request.score.features.push_back(item.number);
  }
  if (request.score.features.empty()) {
    return Status::InvalidArgument("\"features\" must not be empty");
  }
  return request;
}

std::string FormatScoreResponse(const ScoreRequest& request,
                                const ScoreOutcome& outcome) {
  if (!outcome.status.ok()) {
    return FormatErrorResponse(request.id, outcome.status);
  }
  return StrFormat(
      "{\"id\":%llu,\"imsi\":%lld,\"score\":%s,\"snapshot\":%llu}",
      static_cast<unsigned long long>(request.id),
      static_cast<long long>(request.imsi),
      JsonNumber(outcome.score).c_str(),
      static_cast<unsigned long long>(outcome.snapshot_version));
}

std::string FormatErrorResponse(uint64_t id, const Status& status) {
  return StrFormat("{\"id\":%llu,\"error\":\"%s\",\"retry\":%s}",
                   static_cast<unsigned long long>(id),
                   JsonEscape(status.ToString()).c_str(),
                   status.IsUnavailable() ? "true" : "false");
}

std::string FormatScoreRequest(const ScoreRequest& request) {
  std::string out = StrFormat("{\"id\":%llu,\"imsi\":%lld,\"features\":[",
                              static_cast<unsigned long long>(request.id),
                              static_cast<long long>(request.imsi));
  for (size_t i = 0; i < request.features.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonNumber(request.features[i]);
  }
  out += "]}";
  return out;
}

}  // namespace telco
