#include "serve/request_codec.h"

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/string_util.h"
#include "common/telemetry/json.h"

namespace telco {

namespace {

// Zero-allocation scanner for the canonical score-request shape emitted
// by FormatScoreRequest:
//
//   {"id":N,"imsi":N,["model":"...",]"features":[n,n,...]}
//
// This is the hot path of every serve session (thousands of requests per
// second through one core), so it avoids the DOM parser's per-member and
// per-feature JsonValue allocations. It is strictly conservative: any
// deviation — whitespace, reordered members, escapes, huge integers,
// non-finite numbers — returns false and the request takes the DOM path
// below, so accepted inputs parse identically either way.
bool FastParseScoreRequest(std::string_view line, ServeRequest* out) {
  const char* p = line.data();
  const char* const end = p + line.size();
  const auto lit = [&p, end](std::string_view expect) {
    if (static_cast<size_t>(end - p) < expect.size() ||
        std::memcmp(p, expect.data(), expect.size()) != 0) {
      return false;
    }
    p += expect.size();
    return true;
  };
  // Unsigned decimal of at most 15 digits (always below 2^53, matching
  // the DOM path's integral-number bound).
  const auto digits = [&p, end](uint64_t* value) {
    const char* const first = p;
    uint64_t v = 0;
    while (p < end && *p >= '0' && *p <= '9') {
      v = v * 10 + static_cast<uint64_t>(*p - '0');
      ++p;
    }
    if (p == first || p - first > 15) return false;
    *value = v;
    return true;
  };

  if (!lit("{\"id\":")) return false;
  uint64_t id = 0;
  if (!digits(&id)) return false;
  if (!lit(",\"imsi\":")) return false;
  bool imsi_negative = false;
  if (p < end && *p == '-') {
    imsi_negative = true;
    ++p;
  }
  uint64_t imsi_magnitude = 0;
  if (!digits(&imsi_magnitude)) return false;
  if (!lit(",")) return false;

  std::string model;
  if (lit("\"model\":\"")) {
    const char* const close = static_cast<const char*>(
        std::memchr(p, '"', static_cast<size_t>(end - p)));
    if (close == nullptr) return false;
    for (const char* q = p; q < close; ++q) {
      if (*q == '\\') return false;  // escapes take the DOM path
    }
    model.assign(p, close);
    p = close + 1;
    if (!lit(",")) return false;
  }

  if (!lit("\"features\":[")) return false;
  std::vector<double> features;
  features.reserve(64);
  for (;;) {
    // from_chars is bounded by `end` (the line is a view into a larger
    // buffer) and correctly rounded, so it parses to the identical
    // double the DOM path's strtod would. Guard the first character:
    // from_chars also accepts "inf"/"nan" spellings, which must fall
    // back so the DOM path decides their fate.
    if (p >= end || (*p != '-' && (*p < '0' || *p > '9'))) return false;
    double value = 0.0;
    const auto parsed = std::from_chars(p, end, value);
    if (parsed.ec != std::errc() || !std::isfinite(value)) return false;
    p = parsed.ptr;
    features.push_back(value);
    if (p < end && *p == ',') {
      ++p;
      continue;
    }
    break;
  }
  if (!lit("]}")) return false;
  if (p != end) return false;

  out->type = ServeRequestType::kScore;
  out->score.id = id;
  out->score.imsi = imsi_negative ? -static_cast<int64_t>(imsi_magnitude)
                                  : static_cast<int64_t>(imsi_magnitude);
  out->score.model = std::move(model);
  out->score.features = std::move(features);
  return true;
}

// Ids and imsis travel as JSON numbers; reject anything that is not an
// integral value representable without loss.
Result<int64_t> IntegralMember(const JsonValue& object, const std::string& key,
                               bool required, int64_t fallback) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) {
    if (required) {
      return Status::InvalidArgument("request is missing \"" + key + "\"");
    }
    return fallback;
  }
  if (member->type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("request member \"" + key +
                                   "\" must be a number");
  }
  const double value = member->number;
  if (!std::isfinite(value) || value != std::floor(value) ||
      std::abs(value) > 9.007199254740992e15) {  // 2^53
    return Status::InvalidArgument("request member \"" + key +
                                   "\" must be an integral number");
  }
  return static_cast<int64_t>(value);
}

// Optional string member; `fallback` when absent, InvalidArgument on a
// non-string value.
Result<std::string> StringMember(const JsonValue& object,
                                 const std::string& key,
                                 std::string fallback) {
  const JsonValue* member = object.Find(key);
  if (member == nullptr) return fallback;
  if (member->type != JsonValue::Type::kString) {
    return Status::InvalidArgument("request member \"" + key +
                                   "\" must be a string");
  }
  return member->string;
}

}  // namespace

Result<ServeRequest> ParseServeRequest(std::string_view line) {
  if (line.size() > kMaxRequestLineBytes) {
    return Status::InvalidArgument(StrFormat(
        "request line of %zu bytes exceeds the %zu-byte limit", line.size(),
        kMaxRequestLineBytes));
  }
  ServeRequest fast;
  if (FastParseScoreRequest(line, &fast)) return fast;
  TELCO_ASSIGN_OR_RETURN(const JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request line must be a JSON object");
  }

  ServeRequest request;
  if (const JsonValue* cmd = doc.Find("cmd"); cmd != nullptr) {
    if (cmd->type != JsonValue::Type::kString) {
      return Status::InvalidArgument("\"cmd\" must be a string");
    }
    if (cmd->string == "swap") {
      const JsonValue* model = doc.Find("model");
      if (model == nullptr || model->type != JsonValue::Type::kString ||
          model->string.empty()) {
        return Status::InvalidArgument(
            "swap command requires a \"model\" path string");
      }
      request.type = ServeRequestType::kSwap;
      request.model_path = model->string;
      TELCO_ASSIGN_OR_RETURN(request.model_name,
                             StringMember(doc, "name", ""));
      return request;
    }
    if (cmd->string == "stats") {
      request.type = ServeRequestType::kStats;
      return request;
    }
    if (cmd->string == "metrics") {
      request.type = ServeRequestType::kMetrics;
      return request;
    }
    if (cmd->string == "quit") {
      request.type = ServeRequestType::kQuit;
      return request;
    }
    return Status::InvalidArgument("unknown command \"" + cmd->string + "\"");
  }

  request.type = ServeRequestType::kScore;
  TELCO_ASSIGN_OR_RETURN(const int64_t id,
                         IntegralMember(doc, "id", /*required=*/true, 0));
  if (id < 0) {
    return Status::InvalidArgument("request \"id\" must be >= 0");
  }
  request.score.id = static_cast<uint64_t>(id);
  TELCO_ASSIGN_OR_RETURN(request.score.imsi,
                         IntegralMember(doc, "imsi", /*required=*/false, 0));
  TELCO_ASSIGN_OR_RETURN(request.score.model,
                         StringMember(doc, "model", ""));
  const JsonValue* features = doc.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument(
        "score request requires a \"features\" array");
  }
  request.score.features.reserve(features->items.size());
  for (const JsonValue& item : features->items) {
    if (item.type != JsonValue::Type::kNumber) {
      return Status::InvalidArgument("\"features\" must contain only numbers");
    }
    request.score.features.push_back(item.number);
  }
  if (request.score.features.empty()) {
    return Status::InvalidArgument("\"features\" must not be empty");
  }
  return request;
}

std::string FormatScoreResponse(const ScoreRequest& request,
                                const ScoreOutcome& outcome) {
  if (!outcome.status.ok()) {
    return FormatErrorResponse(request.id, outcome.status);
  }
  // Echo the routing key only when one was given, so single-model
  // streams stay byte-identical to the pre-router protocol.
  std::string model_member;
  if (!request.model.empty()) {
    model_member =
        StrFormat("\"model\":\"%s\",", JsonEscape(request.model).c_str());
  }
  return StrFormat(
      "{\"id\":%llu,\"imsi\":%lld,%s\"score\":%s,\"snapshot\":%llu}",
      static_cast<unsigned long long>(request.id),
      static_cast<long long>(request.imsi), model_member.c_str(),
      JsonNumber(outcome.score).c_str(),
      static_cast<unsigned long long>(outcome.snapshot_version));
}

std::string FormatErrorResponse(uint64_t id, const Status& status) {
  return StrFormat("{\"id\":%llu,\"error\":\"%s\",\"retry\":%s}",
                   static_cast<unsigned long long>(id),
                   JsonEscape(status.ToString()).c_str(),
                   status.IsUnavailable() ? "true" : "false");
}

std::string FormatScoreRequest(const ScoreRequest& request) {
  std::string model_member;
  if (!request.model.empty()) {
    model_member =
        StrFormat("\"model\":\"%s\",", JsonEscape(request.model).c_str());
  }
  std::string out;
  // Shortest round-trip form is at most 24 characters; reserving up
  // front keeps the hot request-formatting path to a single allocation.
  out.reserve(64 + model_member.size() + request.features.size() * 26);
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "{\"id\":%llu,\"imsi\":%lld,",
                              static_cast<unsigned long long>(request.id),
                              static_cast<long long>(request.imsi));
  out.append(buf, static_cast<size_t>(n));
  out += model_member;
  out += "\"features\":[";
  for (size_t i = 0; i < request.features.size(); ++i) {
    if (i > 0) out += ',';
    const double value = request.features[i];
    if (!std::isfinite(value)) {
      out += '0';  // JsonNumber semantics for non-finite values
      continue;
    }
    const auto result = std::to_chars(buf, buf + sizeof(buf), value);
    out.append(buf, result.ptr);
  }
  out += "]}";
  return out;
}

}  // namespace telco
