// StdioScoringServer: drives a ScoringExecutor over the newline-delimited
// JSON protocol (request_codec.h) on an istream/FILE pair — `telcochurn
// serve` wires it to stdin/stdout, tests to string streams and pipes.
//
// Ordering contract: responses to score requests are written in request
// order. Control responses (swap/stats/errors) are written at the point
// they occur, after every earlier score response has been flushed, so a
// replayed stream produces byte-identical output. Each response line is
// committed with a single write + flush — a kill between lines (the
// serve.respond fault site) can never leave a partial JSON line.

#ifndef TELCO_SERVE_STDIO_SERVER_H_
#define TELCO_SERVE_STDIO_SERVER_H_

#include <chrono>
#include <cstdio>
#include <deque>
#include <future>
#include <istream>

#include "common/result.h"
#include "serve/request_codec.h"
#include "serve/scoring_executor.h"
#include "serve/serve_stats.h"
#include "serve/snapshot_registry.h"

namespace telco {

struct StdioServerOptions {
  /// Score responses allowed in flight before the reader blocks on the
  /// oldest one (pipelining window). Clamped to the executor queue bound.
  size_t window = 128;
  /// Emit a request-scoped TraceSpan for every Nth score request while
  /// the trace recorder runs (0 = never). CLI: --trace-sample=N.
  uint64_t trace_sample = 0;
  ScoringExecutorOptions executor;
};

/// \brief One serve session: reads requests until EOF or a quit command.
class StdioScoringServer {
 public:
  /// `registry` must outlive the server and hold a published snapshot
  /// before the first score request arrives.
  StdioScoringServer(SnapshotRegistry* registry,
                     StdioServerOptions options = {});

  /// Runs the session loop. Returns non-OK only on I/O failure of `out`
  /// or an injected serve.respond error; protocol-level problems become
  /// error-response lines instead. Ignores SIGPIPE for the process and
  /// treats a peer-closed response stream (EPIPE) as a clean end of
  /// session (OK), never process death.
  Status Run(std::istream& in, std::FILE* out);

 private:
  struct InFlight {
    ScoreRequest request;
    std::future<ScoreOutcome> future;
    /// When the request line was read off the input stream; start of its
    /// `total` stage.
    std::chrono::steady_clock::time_point received{};
    /// Request trace span id (0 = unsampled); closed after the response
    /// line is written.
    uint64_t trace_span = 0;
    double trace_begin_us = 0.0;
  };

  /// Waits for the oldest in-flight response and writes it.
  Status FlushOne(std::FILE* out);
  /// Flushes every in-flight response (ordering barrier before control
  /// responses and at EOF).
  Status FlushAll(std::FILE* out);
  /// Commits one response line atomically (single write + flush).
  Status WriteLine(std::FILE* out, const std::string& line);

  Status HandleScore(ScoreRequest request, std::FILE* out,
                     std::chrono::steady_clock::time_point received);
  Status HandleSwap(const std::string& model_path,
                    const std::string& model_name, std::FILE* out);
  Status HandleStats(std::FILE* out);
  Status HandleMetrics(std::FILE* out);

  SnapshotRegistry* registry_;
  StdioServerOptions options_;
  ScoringExecutor executor_;
  RequestTraceSampler trace_sampler_;
  std::deque<InFlight> in_flight_;
  /// Set by WriteLine on EPIPE: the reader vanished; Run ends cleanly.
  bool peer_closed_ = false;
};

}  // namespace telco

#endif  // TELCO_SERVE_STDIO_SERVER_H_
