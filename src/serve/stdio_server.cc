#include "serve/stdio_server.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/json.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/trace.h"

namespace telco {

StdioScoringServer::StdioScoringServer(SnapshotRegistry* registry,
                                       StdioServerOptions options)
    : registry_(registry),
      options_(options),
      executor_(registry, options.executor),
      trace_sampler_(options.trace_sample) {
  if (options_.window == 0) options_.window = 1;
  options_.window =
      std::min(options_.window, executor_.options().max_queue_depth);
}

Status StdioScoringServer::WriteLine(std::FILE* out,
                                     const std::string& line) {
  TELCO_RETURN_NOT_OK(MaybeInjectFault("serve.respond"));
  const std::string with_newline = line + "\n";
  // One logical write per response: a crash between responses never
  // tears a line. fwrite may still report a short count when a signal
  // interrupts the underlying write — loop over the remainder instead of
  // treating it as fatal; only a zero-progress error ends the session.
  size_t written = 0;
  while (written < with_newline.size()) {
    errno = 0;
    const size_t n = std::fwrite(with_newline.data() + written, 1,
                                 with_newline.size() - written, out);
    written += n;
    if (n == 0) {
      if (errno == EINTR) {
        std::clearerr(out);
        continue;
      }
      if (errno == EPIPE) {
        // The reader went away (SIGPIPE is ignored in serve verbs, so
        // the write fails with EPIPE instead of killing the process).
        peer_closed_ = true;
        return Status::IoError("response stream peer closed (EPIPE)");
      }
      return Status::IoError("write failed on response stream");
    }
  }
  while (std::fflush(out) != 0) {
    if (errno == EINTR) {
      std::clearerr(out);
      continue;
    }
    if (errno == EPIPE) {
      peer_closed_ = true;
      return Status::IoError("response stream peer closed (EPIPE)");
    }
    return Status::IoError("flush failed on response stream");
  }
  return Status::OK();
}

Status StdioScoringServer::FlushOne(std::FILE* out) {
  InFlight oldest = std::move(in_flight_.front());
  in_flight_.pop_front();
  const ScoreOutcome outcome = oldest.future.get();
  const auto write_begin = std::chrono::steady_clock::now();
  const Status status =
      WriteLine(out, FormatScoreResponse(oldest.request, outcome));
  const auto write_end = std::chrono::steady_clock::now();
  // write = the WriteLine commit itself (stdio has no send queue); total =
  // request line read -> response bytes flushed.
  StageHistograms().write_seconds.Observe(
      std::chrono::duration<double>(write_end - write_begin).count());
  StageHistograms().total_seconds.Observe(
      std::chrono::duration<double>(write_end - oldest.received).count());
  if (oldest.trace_span != 0) {
    TraceRecorder& recorder = TraceRecorder::Global();
    const double now_us = recorder.NowMicros();
    const double write_begin_us =
        now_us -
        std::chrono::duration<double, std::micro>(write_end - write_begin)
            .count();
    recorder.AppendCompleted("serve.request.write", 0, oldest.trace_span,
                             write_begin_us, now_us);
    recorder.AppendCompleted("serve.request", oldest.trace_span, 0,
                             oldest.trace_begin_us, now_us);
  }
  return status;
}

Status StdioScoringServer::FlushAll(std::FILE* out) {
  while (!in_flight_.empty()) TELCO_RETURN_NOT_OK(FlushOne(out));
  return Status::OK();
}

Status StdioScoringServer::HandleScore(
    ScoreRequest request, std::FILE* out,
    std::chrono::steady_clock::time_point received) {
  if (!request.model.empty()) {
    // The stdio pipe serves exactly one model; named routes live behind
    // the TCP front-end's ModelRouter.
    return WriteLine(
        out, FormatErrorResponse(
                 request.id,
                 Status::InvalidArgument(
                     "named models (\"model\":\"...\") require the TCP "
                     "front-end (serve --tcp-port)")));
  }
  RequestTelemetry telemetry;
  telemetry.received = received;
  telemetry.trace_span = trace_sampler_.Sample();
  // Root span begins at wire arrival: shift the recorder's current
  // reading back by the time elapsed since `received`.
  const double trace_begin_us =
      telemetry.trace_span != 0
          ? TraceRecorder::Global().NowMicros() -
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - received)
                    .count()
          : 0.0;
  for (;;) {
    Result<std::future<ScoreOutcome>> submitted =
        executor_.Submit(request, telemetry);
    if (submitted.ok()) {
      InFlight entry;
      entry.request = std::move(request);
      entry.future = std::move(submitted).ValueOrDie();
      entry.received = received;
      entry.trace_span = telemetry.trace_span;
      entry.trace_begin_us = trace_begin_us;
      in_flight_.push_back(std::move(entry));
      break;
    }
    if (submitted.status().IsUnavailable() && !in_flight_.empty()) {
      // Backpressure: draining the oldest response frees queue space as
      // its batch completes, then the submit is retried.
      TELCO_RETURN_NOT_OK(FlushOne(out));
      continue;
    }
    // Permanent failure, or overload with nothing of ours in flight:
    // surface the retry hint to the client instead of spinning.
    return WriteLine(out,
                     FormatErrorResponse(request.id, submitted.status()));
  }
  if (in_flight_.size() >= options_.window) {
    TELCO_RETURN_NOT_OK(FlushOne(out));
  }
  return Status::OK();
}

Status StdioScoringServer::HandleSwap(const std::string& model_path,
                                      const std::string& model_name,
                                      std::FILE* out) {
  if (!model_name.empty()) {
    return WriteLine(
        out,
        StrFormat("{\"cmd\":\"swap\",\"ok\":false,\"error\":\"%s\"}",
                  JsonEscape("named models (\"name\":\"...\") require the "
                             "TCP front-end (serve --tcp-port)")
                      .c_str()));
  }
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      ModelSnapshot::LoadFromFile(model_path);
  if (!snapshot.ok()) {
    return WriteLine(
        out, StrFormat("{\"cmd\":\"swap\",\"ok\":false,\"error\":\"%s\"}",
                       JsonEscape(snapshot.status().ToString()).c_str()));
  }
  const uint32_t fingerprint = (*snapshot)->fingerprint();
  const uint64_t version =
      registry_->Publish(std::move(snapshot).ValueOrDie());
  return WriteLine(
      out,
      StrFormat("{\"cmd\":\"swap\",\"ok\":true,\"snapshot\":%llu,"
                "\"model\":\"%s\",\"fingerprint\":\"%08x\"}",
                static_cast<unsigned long long>(version),
                JsonEscape(model_path).c_str(), fingerprint));
}

Status StdioScoringServer::HandleStats(std::FILE* out) {
  const SnapshotRef ref = registry_->Acquire();
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  return WriteLine(
      out,
      StrFormat("{\"cmd\":\"stats\",\"snapshot\":%llu,\"model\":\"%s\",%s}",
                static_cast<unsigned long long>(ref.version),
                ref.snapshot == nullptr
                    ? ""
                    : JsonEscape(ref.snapshot->label()).c_str(),
                ServeStatsCoreJson(metrics).c_str()));
}

Status StdioScoringServer::HandleMetrics(std::FILE* out) {
  return WriteLine(
      out, MetricsResponseJson(MetricsRegistry::Global().Snapshot()));
}

Status StdioScoringServer::Run(std::istream& in, std::FILE* out) {
  // A dropped reader must end the session, not the process: with SIGPIPE
  // ignored, writes to a closed pipe fail with EPIPE, WriteLine flags
  // peer_closed_, and the loop exits cleanly below.
  std::signal(SIGPIPE, SIG_IGN);
  std::string line;
  Status status;
  bool quit = false;
  while (status.ok() && !quit && std::getline(in, line)) {
    if (line.empty()) continue;
    const auto received = std::chrono::steady_clock::now();
    Result<ServeRequest> parsed = ParseServeRequest(line);
    StageHistograms().parse_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      received)
            .count());
    if (!parsed.ok()) {
      // Error lines honour the ordering contract too: drain score
      // responses first so output position identifies the bad input.
      status = FlushAll(out);
      if (status.ok()) {
        status = WriteLine(out, FormatErrorResponse(0, parsed.status()));
      }
      continue;
    }
    ServeRequest request = std::move(parsed).ValueOrDie();
    switch (request.type) {
      case ServeRequestType::kScore:
        status = HandleScore(std::move(request.score), out, received);
        break;
      case ServeRequestType::kSwap:
        status = FlushAll(out);
        if (status.ok()) {
          status = HandleSwap(request.model_path, request.model_name, out);
        }
        break;
      case ServeRequestType::kStats:
        status = FlushAll(out);
        if (status.ok()) status = HandleStats(out);
        break;
      case ServeRequestType::kMetrics:
        status = FlushAll(out);
        if (status.ok()) status = HandleMetrics(out);
        break;
      case ServeRequestType::kQuit:
        quit = true;
        break;
    }
  }
  if (status.ok()) status = FlushAll(out);
  if (peer_closed_) {
    // Every remaining in-flight response has nowhere to go; the executor
    // destructor drains them. This is a clean per-session shutdown.
    in_flight_.clear();
    TELCO_LOG(Info) << "response stream closed by peer; ending serve "
                       "session";
    return Status::OK();
  }
  return status;
}

}  // namespace telco
