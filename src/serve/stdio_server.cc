#include "serve/stdio_server.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "common/telemetry/json.h"
#include "common/telemetry/metrics.h"

namespace telco {

StdioScoringServer::StdioScoringServer(SnapshotRegistry* registry,
                                       StdioServerOptions options)
    : registry_(registry),
      options_(options),
      executor_(registry, options.executor) {
  if (options_.window == 0) options_.window = 1;
  options_.window =
      std::min(options_.window, executor_.options().max_queue_depth);
}

Status StdioScoringServer::WriteLine(std::FILE* out,
                                     const std::string& line) {
  TELCO_RETURN_NOT_OK(MaybeInjectFault("serve.respond"));
  const std::string with_newline = line + "\n";
  // One write per response: a crash between responses never tears a line.
  if (std::fwrite(with_newline.data(), 1, with_newline.size(), out) !=
      with_newline.size()) {
    return Status::IoError("short write on response stream");
  }
  if (std::fflush(out) != 0) {
    return Status::IoError("flush failed on response stream");
  }
  return Status::OK();
}

Status StdioScoringServer::FlushOne(std::FILE* out) {
  InFlight oldest = std::move(in_flight_.front());
  in_flight_.pop_front();
  const ScoreOutcome outcome = oldest.future.get();
  return WriteLine(out, FormatScoreResponse(oldest.request, outcome));
}

Status StdioScoringServer::FlushAll(std::FILE* out) {
  while (!in_flight_.empty()) TELCO_RETURN_NOT_OK(FlushOne(out));
  return Status::OK();
}

Status StdioScoringServer::HandleScore(ScoreRequest request,
                                       std::FILE* out) {
  for (;;) {
    Result<std::future<ScoreOutcome>> submitted = executor_.Submit(request);
    if (submitted.ok()) {
      InFlight entry;
      entry.request = std::move(request);
      entry.future = std::move(submitted).ValueOrDie();
      in_flight_.push_back(std::move(entry));
      break;
    }
    if (submitted.status().IsUnavailable() && !in_flight_.empty()) {
      // Backpressure: draining the oldest response frees queue space as
      // its batch completes, then the submit is retried.
      TELCO_RETURN_NOT_OK(FlushOne(out));
      continue;
    }
    // Permanent failure, or overload with nothing of ours in flight:
    // surface the retry hint to the client instead of spinning.
    return WriteLine(out,
                     FormatErrorResponse(request.id, submitted.status()));
  }
  if (in_flight_.size() >= options_.window) {
    TELCO_RETURN_NOT_OK(FlushOne(out));
  }
  return Status::OK();
}

Status StdioScoringServer::HandleSwap(const std::string& model_path,
                                      std::FILE* out) {
  Result<std::shared_ptr<const ModelSnapshot>> snapshot =
      ModelSnapshot::LoadFromFile(model_path);
  if (!snapshot.ok()) {
    return WriteLine(
        out, StrFormat("{\"cmd\":\"swap\",\"ok\":false,\"error\":\"%s\"}",
                       JsonEscape(snapshot.status().ToString()).c_str()));
  }
  const uint32_t fingerprint = (*snapshot)->fingerprint();
  const uint64_t version =
      registry_->Publish(std::move(snapshot).ValueOrDie());
  return WriteLine(
      out,
      StrFormat("{\"cmd\":\"swap\",\"ok\":true,\"snapshot\":%llu,"
                "\"model\":\"%s\",\"fingerprint\":\"%08x\"}",
                static_cast<unsigned long long>(version),
                JsonEscape(model_path).c_str(), fingerprint));
}

Status StdioScoringServer::HandleStats(std::FILE* out) {
  const SnapshotRef ref = registry_->Acquire();
  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  const auto counter = [&metrics](const char* name) -> unsigned long long {
    const MetricValue* value = metrics.Find(name);
    return value == nullptr ? 0 : value->counter;
  };
  double p50_ms = 0.0, p99_ms = 0.0;
  if (const MetricValue* latency =
          metrics.Find("serve.executor.latency_seconds");
      latency != nullptr) {
    p50_ms = latency->histogram.Quantile(0.5) * 1e3;
    p99_ms = latency->histogram.Quantile(0.99) * 1e3;
  }
  return WriteLine(
      out,
      StrFormat("{\"cmd\":\"stats\",\"snapshot\":%llu,\"model\":\"%s\","
                "\"requests\":%llu,\"batches\":%llu,\"rejected\":%llu,"
                "\"p50_ms\":%s,\"p99_ms\":%s}",
                static_cast<unsigned long long>(ref.version),
                ref.snapshot == nullptr
                    ? ""
                    : JsonEscape(ref.snapshot->label()).c_str(),
                counter("serve.executor.requests"),
                counter("serve.executor.batches"),
                counter("serve.executor.rejected"), JsonNumber(p50_ms).c_str(),
                JsonNumber(p99_ms).c_str()));
}

Status StdioScoringServer::Run(std::istream& in, std::FILE* out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<ServeRequest> parsed = ParseServeRequest(line);
    if (!parsed.ok()) {
      // Error lines honour the ordering contract too: drain score
      // responses first so output position identifies the bad input.
      TELCO_RETURN_NOT_OK(FlushAll(out));
      TELCO_RETURN_NOT_OK(
          WriteLine(out, FormatErrorResponse(0, parsed.status())));
      continue;
    }
    ServeRequest request = std::move(parsed).ValueOrDie();
    switch (request.type) {
      case ServeRequestType::kScore:
        TELCO_RETURN_NOT_OK(HandleScore(std::move(request.score), out));
        break;
      case ServeRequestType::kSwap:
        TELCO_RETURN_NOT_OK(FlushAll(out));
        TELCO_RETURN_NOT_OK(HandleSwap(request.model_path, out));
        break;
      case ServeRequestType::kStats:
        TELCO_RETURN_NOT_OK(FlushAll(out));
        TELCO_RETURN_NOT_OK(HandleStats(out));
        break;
      case ServeRequestType::kQuit:
        return FlushAll(out);
    }
  }
  return FlushAll(out);
}

}  // namespace telco
