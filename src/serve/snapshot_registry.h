// SnapshotRegistry: the publish/acquire point between the monthly retrain
// loop and the online scoring threads.
//
// Swap semantics: Publish atomically replaces the current snapshot and
// bumps a monotonic version; Acquire returns a consistent
// (snapshot, version) pair. A scoring thread that acquired version N
// keeps scoring against N's model even while version N+1 is published —
// the shared_ptr refcount keeps the old snapshot alive until its last
// in-flight batch drains, so there are no torn reads and no blocking of
// scorers during a swap.

#ifndef TELCO_SERVE_SNAPSHOT_REGISTRY_H_
#define TELCO_SERVE_SNAPSHOT_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/model_snapshot.h"

namespace telco {

/// \brief A consistent view of the registry at one acquire: the snapshot
/// and the version it was published as. version == 0 means "nothing
/// published yet" (snapshot is null).
struct SnapshotRef {
  std::shared_ptr<const ModelSnapshot> snapshot;
  uint64_t version = 0;
};

/// \brief Holds the current serving snapshot; hot-swappable under load.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Atomically installs `snapshot` as the current model and returns the
  /// version it was published as (1 for the first publish).
  uint64_t Publish(std::shared_ptr<const ModelSnapshot> snapshot);

  /// The current (snapshot, version) pair. Cheap: one mutex-protected
  /// shared_ptr copy; never blocks on scoring work.
  SnapshotRef Acquire() const;

  /// Version of the most recent Publish (0 before the first).
  uint64_t current_version() const;

 private:
  mutable std::mutex mutex_;
  SnapshotRef current_;
};

}  // namespace telco

#endif  // TELCO_SERVE_SNAPSHOT_REGISTRY_H_
