#include "serve/serve_stats.h"

#include "common/string_util.h"
#include "common/telemetry/json.h"
#include "common/telemetry/trace.h"

namespace telco {

namespace {

struct QuantilesMs {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

QuantilesMs HistogramQuantilesMs(const MetricsSnapshot& metrics,
                                 const std::string& name) {
  QuantilesMs q;
  const MetricValue* metric = metrics.Find(name);
  if (metric != nullptr && metric->histogram.count > 0) {
    q.p50 = metric->histogram.Quantile(0.50) * 1e3;
    q.p99 = metric->histogram.Quantile(0.99) * 1e3;
    q.p999 = metric->histogram.Quantile(0.999) * 1e3;
  }
  return q;
}

std::string QuantilesJson(const QuantilesMs& q) {
  return StrFormat("{\"p50_ms\":%s,\"p99_ms\":%s,\"p999_ms\":%s}",
                   JsonNumber(q.p50).c_str(), JsonNumber(q.p99).c_str(),
                   JsonNumber(q.p999).c_str());
}

}  // namespace

const ServeStageHistograms& StageHistograms() {
  static const ServeStageHistograms* const m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new ServeStageHistograms{
        r.GetLogHistogram("serve.request.parse_seconds"),
        r.GetLogHistogram("serve.request.write_seconds"),
        r.GetLogHistogram("serve.request.total_seconds"),
    };
  }();
  return *m;
}

std::string ServeStatsCoreJson(const MetricsSnapshot& metrics) {
  const auto counter = [&metrics](const char* name) -> unsigned long long {
    const MetricValue* value = metrics.Find(name);
    return value == nullptr ? 0 : value->counter;
  };
  const QuantilesMs latency =
      HistogramQuantilesMs(metrics, "serve.executor.latency_seconds");
  std::string stages;
  static constexpr const char* kStages[] = {"parse", "queue_wait", "score",
                                            "write", "total"};
  for (const char* stage : kStages) {
    if (!stages.empty()) stages += ',';
    stages += StrFormat(
        "\"%s\":%s", stage,
        QuantilesJson(HistogramQuantilesMs(
                          metrics, StrFormat("serve.request.%s_seconds",
                                             stage)))
            .c_str());
  }
  return StrFormat(
      "\"requests\":%llu,\"batches\":%llu,\"rejected\":%llu,"
      "\"p50_ms\":%s,\"p99_ms\":%s,\"p999_ms\":%s,\"stages\":{%s}",
      counter("serve.executor.requests"), counter("serve.executor.batches"),
      counter("serve.executor.rejected"), JsonNumber(latency.p50).c_str(),
      JsonNumber(latency.p99).c_str(), JsonNumber(latency.p999).c_str(),
      stages.c_str());
}

std::string RouteStatsJson(const ModelRouter::RouteStats& route,
                           const MetricsSnapshot& metrics) {
  const QuantilesMs latency = HistogramQuantilesMs(
      metrics, "serve.route." + (route.name.empty() ? "default" : route.name) +
                   ".latency_seconds");
  return StrFormat(
      "{\"model\":\"%s\",\"snapshot\":%llu,\"label\":\"%s\","
      "\"fingerprint\":\"%08x\",\"engine\":\"%s\",\"queue_depth\":%zu,"
      "\"scored\":%llu,\"rejected\":%llu,\"latency\":%s}",
      JsonEscape(route.name).c_str(),
      static_cast<unsigned long long>(route.snapshot_version),
      JsonEscape(route.label).c_str(), route.fingerprint,
      JsonEscape(route.engine).c_str(), route.queue_depth,
      static_cast<unsigned long long>(route.scored),
      static_cast<unsigned long long>(route.rejected),
      QuantilesJson(latency).c_str());
}

std::string MetricsResponseJson(const MetricsSnapshot& metrics) {
  return "{\"cmd\":\"metrics\",\"metrics\":" + metrics.ToJson() + "}";
}

uint64_t RequestTraceSampler::Sample() {
  if (sample_every_ == 0) return 0;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return 0;
  if (counter_.fetch_add(1, std::memory_order_relaxed) % sample_every_ != 0) {
    return 0;
  }
  return recorder.AllocateSpanId();
}

}  // namespace telco
