// ScoringExecutor: micro-batching online scorer on the shared ThreadPool.
//
// Requests carry one customer feature row. Submit enqueues into a bounded
// admission queue (rejecting with a retry hint when full — backpressure,
// never unbounded memory); a dispatcher thread coalesces queued requests
// into batches of at most max_batch_size, acquires the current snapshot
// ONCE per batch from the SnapshotRegistry, packs the rows into one
// contiguous FeatureMatrix and scores it through the same batch entry
// point the offline pipeline uses (Classifier::PredictProbaBatch — the
// compiled flat-forest engine). One snapshot per batch means a
// concurrent hot-swap can never produce a torn batch: every response
// reports the snapshot version that scored it, and its score is
// bit-identical to that snapshot's offline prediction. Schema (row
// width) validation happens ONLY at batch dispatch, against the
// snapshot the batch acquired — a submit-time check would race with a
// concurrent hot swap.
//
// Telemetry (PR-3 registry): serve.executor.requests / rejected /
// batches counters, serve.executor.batch_size and
// serve.executor.latency_seconds histograms (enqueue-to-completion),
// serve.executor.queue_depth gauge.

#ifndef TELCO_SERVE_SCORING_EXECUTOR_H_
#define TELCO_SERVE_SCORING_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/telemetry/metrics.h"
#include "ml/binned_forest.h"
#include "serve/snapshot_registry.h"

namespace telco {

class ThreadPool;

/// \brief One scoring request: a customer and their feature row, in the
/// serving snapshot's schema order.
struct ScoreRequest {
  uint64_t id = 0;
  int64_t imsi = 0;
  /// Routing key for multi-model serving (ModelRouter): which named model
  /// should score this row. Empty = the default route. The executor
  /// itself ignores it — routing happens before Submit.
  std::string model;
  std::vector<double> features;
};

/// \brief Outcome of one scored request. `status` is non-OK when the row
/// could not be scored (e.g. its width does not match the snapshot that
/// its batch ran against); backpressure rejections never get this far —
/// they fail at Submit.
struct ScoreOutcome {
  Status status;
  double score = 0.0;
  uint64_t snapshot_version = 0;
  uint32_t model_fingerprint = 0;
};

/// \brief Per-request observability context threaded from the serving
/// front-end (which stamps request arrival and owns the request trace
/// span) into the executor (which records the queue-wait and score stages
/// against it). Defaults are inert: stage histograms fall back to the
/// enqueue time and no spans are emitted.
struct RequestTelemetry {
  /// When the front-end read the request off the wire; start of the
  /// request's `total` stage. Zero (epoch) = unknown, use enqueue time.
  std::chrono::steady_clock::time_point received{};
  /// Request-scoped trace span id allocated by the reader thread (see
  /// TraceRecorder::AllocateSpanId), 0 when the request is unsampled.
  /// Executor-side stage spans use it as their parent, which is how a
  /// request's timeline stays connected across reader and dispatcher
  /// threads in the exported trace.
  uint64_t trace_span = 0;
};

struct ScoringExecutorOptions {
  /// Largest batch one dispatch scores against one snapshot.
  size_t max_batch_size = 64;
  /// Admission-queue bound; Submit rejects with Unavailable beyond it.
  size_t max_queue_depth = 1024;
  /// Pool the batch scoring fans out on (null = process-wide default).
  ThreadPool* pool = nullptr;
  /// Route label for per-route latency: when non-empty the executor also
  /// records `serve.route.<route_name>.latency_seconds` (log-bucketed),
  /// so multi-model stats can report quantiles per route.
  std::string route_name;
  /// Forest engine this executor scores with. Unset = follow the
  /// process-wide DefaultForestEngine() at each batch; set = pinned
  /// (per-route engine selection — one route can serve the exact flat
  /// engine while another serves the binned one).
  std::optional<ForestEngine> engine;
};

/// \brief Micro-batching scoring service core (in-process).
class ScoringExecutor {
 public:
  explicit ScoringExecutor(SnapshotRegistry* registry,
                           ScoringExecutorOptions options = {});

  /// Drains the queue and joins the dispatcher.
  ~ScoringExecutor();

  ScoringExecutor(const ScoringExecutor&) = delete;
  ScoringExecutor& operator=(const ScoringExecutor&) = delete;

  /// Enqueues a request. Fails fast with Unavailable ("... retry") when
  /// the admission queue is full — the caller should drain a response
  /// and resubmit. Schema problems (wrong row width, nothing published
  /// yet) are reported on the returned outcome, judged against the
  /// snapshot the request's batch actually scored with — never against
  /// the snapshot current at submit time, which a hot swap may replace
  /// before dispatch.
  Result<std::future<ScoreOutcome>> Submit(ScoreRequest request,
                                           RequestTelemetry telemetry = {});

  /// Callback flavour of Submit for event-loop callers (the TCP
  /// front-end) that must not block on a future: `done` runs exactly once
  /// when the request's batch completes, on the dispatcher thread — it
  /// must not block or re-enter the executor. Admission and validation
  /// semantics are identical to Submit.
  Status SubmitWithCallback(ScoreRequest request,
                            std::function<void(ScoreOutcome)> done,
                            RequestTelemetry telemetry = {});

  /// Blocks until every accepted request has completed.
  void Drain();

  /// Stops accepting work, completes what was accepted, joins the
  /// dispatcher. Idempotent; the destructor calls it.
  void Shutdown();

  /// Requests currently waiting for a batch (diagnostics).
  size_t queue_depth() const;

  /// Requests whose outcome has been delivered (OK or per-row failure),
  /// over this executor's lifetime. Unlike the process-wide
  /// serve.executor.* counters these are per-instance, so a router can
  /// report them per route.
  uint64_t completed_requests() const { return completed_.load(); }

  /// Requests refused at admission (full queue), per instance.
  uint64_t rejected_requests() const { return rejected_.load(); }

  /// Pins (or re-pins) the scoring engine; takes effect from the next
  /// batch. Thread-safe against concurrent dispatch.
  void SetEngine(ForestEngine engine) {
    engine_.store(static_cast<int>(engine), std::memory_order_relaxed);
  }

  /// The pinned engine, or nullopt when following the process default.
  std::optional<ForestEngine> engine() const {
    const int pinned = engine_.load(std::memory_order_relaxed);
    if (pinned < 0) return std::nullopt;
    return static_cast<ForestEngine>(pinned);
  }

  const ScoringExecutorOptions& options() const { return options_; }

 private:
  struct Pending {
    ScoreRequest request;
    std::promise<ScoreOutcome> promise;          // future-based Submit
    std::function<void(ScoreOutcome)> callback;  // SubmitWithCallback
    std::chrono::steady_clock::time_point enqueued;
    RequestTelemetry telemetry;
  };

  /// Shared admission path of both Submit flavours.
  Status Enqueue(Pending pending);

  void DispatchLoop();
  void ScoreBatch(std::vector<Pending> batch);

  SnapshotRegistry* registry_;
  ScoringExecutorOptions options_;
  /// Per-route log-bucketed latency (inert default handle when
  /// route_name is empty).
  Histogram route_latency_;

  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> rejected_{0};
  /// Pinned ForestEngine as int, -1 = unset (follow the process default).
  std::atomic<int> engine_{-1};

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;  // dispatcher: work or stop
  std::condition_variable idle_cv_;   // Drain: queue empty + not scoring
  std::deque<Pending> queue_;
  bool in_flight_ = false;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace telco

#endif  // TELCO_SERVE_SCORING_EXECUTOR_H_
