#include "ml/binning.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace telco {

Result<FeatureBinner> FeatureBinner::Fit(const Dataset& data, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    return Status::InvalidArgument("max_bins must be in [2, 256]");
  }
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("cannot fit binner on empty dataset");
  }
  FeatureBinner binner;
  binner.edges_.resize(data.num_features());
  std::vector<double> values(data.num_rows());
  for (size_t j = 0; j < data.num_features(); ++j) {
    for (size_t r = 0; r < data.num_rows(); ++r) values[r] = data.At(r, j);
    std::sort(values.begin(), values.end());
    auto& edges = binner.edges_[j];
    edges.clear();
    // Candidate edges at the quantile cut points; dedupe so constant or
    // few-valued features get fewer (possibly zero) edges.
    for (int b = 1; b < max_bins; ++b) {
      const double pos = static_cast<double>(b) /
                         static_cast<double>(max_bins) *
                         static_cast<double>(values.size() - 1);
      const double edge = values[static_cast<size_t>(pos)];
      if (edges.empty() || edge > edges.back()) edges.push_back(edge);
    }
    // Drop a trailing edge equal to the max so the last bin is non-empty.
    while (!edges.empty() && edges.back() >= values.back()) edges.pop_back();
  }
  return binner;
}

uint8_t FeatureBinner::BinOf(size_t j, double v) const {
  const auto& edges = edges_[j];
  // v <= edges[b] lands in bin b; above all edges lands in the last bin.
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  return static_cast<uint8_t>(it - edges.begin());
}

BinnedDataset EncodeBins(const FeatureBinner& binner, const Dataset& data) {
  TELCO_CHECK(binner.num_features() == data.num_features());
  BinnedDataset out;
  out.binner = &binner;
  out.num_rows = data.num_rows();
  out.num_features = data.num_features();
  out.codes.resize(out.num_rows * out.num_features);
  for (size_t r = 0; r < out.num_rows; ++r) {
    const auto row = data.Row(r);
    uint8_t* dst = &out.codes[r * out.num_features];
    for (size_t j = 0; j < out.num_features; ++j) {
      dst[j] = binner.BinOf(j, row[j]);
    }
  }
  return out;
}

Result<ThresholdEdgeMap> ThresholdEdgeMap::Build(
    const std::vector<std::vector<double>>& thresholds) {
  ThresholdEdgeMap map;
  map.offsets_.reserve(thresholds.size() + 1);
  map.offsets_.push_back(0);
  std::vector<double> edges;
  for (size_t j = 0; j < thresholds.size(); ++j) {
    edges.clear();
    edges.reserve(thresholds[j].size());
    for (const double t : thresholds[j]) {
      if (!std::isnan(t)) edges.push_back(t);
    }
    std::sort(edges.begin(), edges.end());
    // Dedupe with ==; -0.0 and 0.0 collapse into one edge, which is safe
    // because `v <= -0.0` and `v <= 0.0` agree for every v.
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // Codes (and the NaN sentinel = edge count) must fit uint16; wider
    // features would truncate, so refuse and let the caller keep the
    // exact engine.
    if (edges.size() > 0xFFFF) {
      return Status::InvalidArgument(StrFormat(
          "feature %zu has %zu distinct split thresholds; binned codes "
          "are limited to uint16",
          j, edges.size()));
    }
    map.max_edges_ =
        std::max(map.max_edges_, static_cast<uint32_t>(edges.size()));
    map.edges_.insert(map.edges_.end(), edges.begin(), edges.end());
    map.offsets_.push_back(static_cast<uint32_t>(map.edges_.size()));
  }
  return map;
}

uint16_t ThresholdEdgeMap::CodeOf(size_t j, double threshold) const {
  const auto first = edges_.begin() + offsets_[j];
  const auto last = edges_.begin() + offsets_[j + 1];
  const auto it = std::lower_bound(first, last, threshold);
  TELCO_DCHECK(it != last && *it == threshold);
  return static_cast<uint16_t>(it - first);
}

uint16_t ThresholdEdgeMap::BinOf(size_t j, double v) const {
  const auto first = edges_.begin() + offsets_[j];
  const auto last = edges_.begin() + offsets_[j + 1];
  if (std::isnan(v)) return static_cast<uint16_t>(last - first);
  return static_cast<uint16_t>(std::lower_bound(first, last, v) - first);
}

Result<QuantileOneHotEncoder> QuantileOneHotEncoder::Fit(const Dataset& data,
                                                         int max_bins) {
  QuantileOneHotEncoder enc;
  TELCO_ASSIGN_OR_RETURN(enc.binner_, FeatureBinner::Fit(data, max_bins));
  enc.offsets_.resize(data.num_features() + 1, 0);
  for (size_t j = 0; j < data.num_features(); ++j) {
    enc.offsets_[j + 1] =
        enc.offsets_[j] + static_cast<size_t>(enc.binner_.NumBins(j));
  }
  enc.total_width_ = enc.offsets_.back();
  enc.encoded_names_.reserve(enc.total_width_);
  for (size_t j = 0; j < data.num_features(); ++j) {
    for (int b = 0; b < enc.binner_.NumBins(j); ++b) {
      enc.encoded_names_.push_back(
          StrFormat("%s#bin%d", data.feature_names()[j].c_str(), b));
    }
  }
  return enc;
}

Dataset QuantileOneHotEncoder::Transform(const Dataset& data) const {
  Dataset out(encoded_names_);
  std::vector<double> row(total_width_);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    std::fill(row.begin(), row.end(), 0.0);
    const auto src = data.Row(r);
    for (size_t j = 0; j < data.num_features(); ++j) {
      row[offsets_[j] + binner_.BinOf(j, src[j])] = 1.0;
    }
    out.AddRow(row, data.label(r), data.weight(r));
  }
  return out;
}

std::vector<double> QuantileOneHotEncoder::TransformRow(
    std::span<const double> row) const {
  std::vector<double> out(total_width_, 0.0);
  for (size_t j = 0; j < row.size() && j < binner_.num_features(); ++j) {
    out[offsets_[j] + binner_.BinOf(j, row[j])] = 1.0;
  }
  return out;
}

}  // namespace telco
