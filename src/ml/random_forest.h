// Random Forest (paper Section 4.2): bagging over Gini CART trees with a
// sqrt(N) random feature subspace per node. Prediction is the average of
// the per-tree class distributions (Eq. 4); feature importance is the
// accumulated Gini improvement (Eq. 7).

#ifndef TELCO_ML_RANDOM_FOREST_H_
#define TELCO_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/binned_forest.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/flat_forest.h"

namespace telco {

class ThreadPool;

/// Hyper-parameters; paper defaults are 500 trees and min split 100.
struct RandomForestOptions {
  int num_trees = 500;
  /// 0 = sqrt(num_features), the paper's subspace size.
  size_t max_features = 0;
  size_t min_samples_split = 100;
  size_t min_samples_leaf = 1;
  int max_depth = 32;
  /// Bootstrap sample size as a fraction of the training set.
  double bootstrap_fraction = 1.0;
  uint64_t seed = 7;
  /// Fit trees on a thread pool (per-tree RNG streams keyed by
  /// HashCombine64(seed, tree), so results are identical to serial).
  bool parallel = true;
  /// Pool used when parallel (null = the process-wide default pool).
  ThreadPool* pool = nullptr;
};

/// \brief Random-forest classifier (binary and multi-class).
class RandomForest final : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  Status Fit(const Dataset& data) override;
  double PredictProba(std::span<const double> row) const override;
  /// Batch scoring through a compiled engine — the binned
  /// integer-compare engine when DefaultForestEngine() selects it (the
  /// default) and it compiled, else the exact flat engine. Both are
  /// bit-identical to the per-row pointer walk, much faster.
  std::vector<double> PredictProbaBatch(FeatureMatrix rows,
                                        ThreadPool* pool) const override;
  /// Explicit-engine flavour (per-route serving): kBinned scores through
  /// the binned engine when it compiled, kExact through the flat engine;
  /// both fall back gracefully and stay bit-identical.
  std::vector<double> PredictProbaBatch(FeatureMatrix rows, ThreadPool* pool,
                                        ForestEngine engine) const;
  using Classifier::PredictProbaBatch;
  std::vector<double> PredictClassProba(
      std::span<const double> row) const override;
  std::string name() const override { return "RandomForest"; }

  /// Per-feature Gini importance, normalised to sum to 1 (Table 4).
  const std::vector<double>& FeatureImportance() const { return importance_; }

  /// (feature index, importance) sorted by descending importance.
  std::vector<std::pair<size_t, double>> RankedImportance() const;

  int num_classes() const { return num_classes_; }
  size_t num_trees() const { return trees_.size(); }

  /// Serialization access (ml/serialize).
  const std::vector<ClassificationTree>& trees() const { return trees_; }
  /// The exact compiled engine (null only before a successful fit).
  const FlatForest* flat() const { return flat_.get(); }
  /// The binned integer-compare engine (null before a fit, or when the
  /// forest cannot be binned — scoring then stays on the exact engine).
  const BinnedForest* binned() const { return binned_.get(); }
  /// Rebuilds a fitted forest from deserialized parts.
  static Result<RandomForest> FromParts(RandomForestOptions options,
                                        int num_classes,
                                        std::vector<ClassificationTree> trees,
                                        std::vector<double> importance);

 private:
  RandomForestOptions options_;
  std::vector<ClassificationTree> trees_;
  std::vector<double> importance_;
  // Shared so copies of a fitted forest reuse one compiled arena.
  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const BinnedForest> binned_;
  int num_classes_ = 2;
};

}  // namespace telco

#endif  // TELCO_ML_RANDOM_FOREST_H_
