// Discrete AdaBoost over shallow CART trees — the boosting family the
// paper's related work applies to churn prediction (Jinbo et al. 2007,
// Lu et al. 2014). Provided as an additional comparator beside the four
// classifiers of Figure 9.

#ifndef TELCO_ML_ADABOOST_H_
#define TELCO_ML_ADABOOST_H_

#include <vector>

#include "ml/classifier.h"
#include "ml/decision_tree.h"

namespace telco {

struct AdaBoostOptions {
  /// Boosting rounds.
  int num_rounds = 100;
  /// Depth of each weak learner (1 = decision stumps).
  int max_depth = 2;
  size_t min_samples_leaf = 5;
  uint64_t seed = 19;
};

/// \brief Binary discrete-AdaBoost classifier.
///
/// Each round fits a weak tree on the reweighted sample, earns a vote
/// alpha_t = 1/2 ln((1 - err_t) / err_t), and multiplies the weights of
/// misclassified instances by e^{alpha}. PredictProba maps the weighted
/// vote margin through a logistic link.
class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(AdaBoostOptions options = {});

  Status Fit(const Dataset& data) override;
  double PredictProba(std::span<const double> row) const override;
  std::string name() const override { return "AdaBoost"; }

  size_t num_rounds_used() const { return trees_.size(); }

 private:
  AdaBoostOptions options_;
  std::vector<ClassificationTree> trees_;
  std::vector<double> alphas_;
};

}  // namespace telco

#endif  // TELCO_ML_ADABOOST_H_
