// The four imbalance treatments compared in paper Section 5.7 / Table 7:
// Not Balanced, Up Sampling, Down Sampling and Weighted Instance (the
// paper's recommendation).

#ifndef TELCO_ML_IMBALANCE_H_
#define TELCO_ML_IMBALANCE_H_

#include <string>

#include "common/result.h"
#include "ml/dataset.h"

namespace telco {

enum class ImbalanceStrategy : int {
  /// Train on the raw class ratio.
  kNone = 0,
  /// Randomly replicate minority (churner) rows to parity.
  kUpSampling = 1,
  /// Randomly subsample majority (non-churner) rows to parity.
  kDownSampling = 2,
  /// Keep all rows; weight each class inversely to its frequency.
  kWeightedInstance = 3,
};

const char* ImbalanceStrategyToString(ImbalanceStrategy strategy);

/// \brief Applies the strategy to a binary dataset, returning the dataset
/// to train on. kNone returns a copy; sampling strategies change the row
/// multiset; kWeightedInstance only changes instance weights.
Result<Dataset> ApplyImbalanceStrategy(const Dataset& data,
                                       ImbalanceStrategy strategy,
                                       uint64_t seed);

}  // namespace telco

#endif  // TELCO_ML_IMBALANCE_H_
