// BinnedForest: the integer-compare inference engine compiled from a
// FlatForest (flat-forest v2).
//
// The exact engine compares one double per node per row; its 16-byte
// nodes put the whole ~2MB arena of a 500-tree forest outside L2 on the
// serving box. This engine re-encodes the same arena as 8-byte nodes
// whose threshold is a per-feature integer *bin code*: each incoming
// block of rows is mapped to bin codes once (one branchless lower_bound
// per feature, see ThresholdEdgeMap), and traversal becomes an integer
// compare over a half-sized, cache-resident arena.
//
// Scores are bit-identical to the exact engine — not merely close. The
// bin edges are exactly the distinct thresholds the ensemble tests, so
// `code(v) < code(t)+1  <=>  v <= t` for every row value v and stored
// threshold t (rows landing exactly on a split threshold bin identically
// to the double compare; NaN maps to a sentinel code above every split
// and falls right). Each row therefore reaches the same leaf, and the
// accumulation (tree order, RF average / GBDT sigmoid-of-margin) copies
// the exact engine's arithmetic verbatim. The exact FlatForest stays in
// every model as the parity oracle; parity is enforced bit-for-bit in
// tests/ml/binned_forest_test.cc. See DESIGN.md §12.
//
// Node encoding (8 bytes, little-endian layout matters to the AVX2 path):
//   uint16 split;        // internal: code(threshold)+1;  leaf/NaN-split: 0
//   uint16 feature;      // code-buffer column tested;    leaf: 0
//   int32  right_delta;  // right child at (this + delta); leaf: 0
// Descent is the branch-free conditional move
//   idx += code < split ? 1 : right_delta;
// A leaf (right_delta == 0, split == 0) steps to itself: the 64-row
// block loop advances every row in lock step and stops when an iteration
// moves nobody, so rows at different depths need no per-row branches. An
// internal node with a NaN threshold keeps split == 0 with a real
// right_delta — no code is < 0, so it is unconditionally-right, matching
// `v <= NaN == false`. A runtime-dispatched AVX2 path (8 rows per step,
// gathered nodes and codes) accelerates the same loop on capable CPUs.

#ifndef TELCO_ML_BINNED_FOREST_H_
#define TELCO_ML_BINNED_FOREST_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "ml/binning.h"
#include "ml/feature_matrix.h"
#include "ml/flat_forest.h"

namespace telco {

class ThreadPool;

/// \brief Which compiled inference engine batch scoring uses.
enum class ForestEngine {
  kExact,   // FlatForest: one double compare per node (parity oracle)
  kBinned,  // BinnedForest: integer compares over pre-binned rows
};

/// Process-wide default engine, initialised once from the
/// TELCO_FOREST_ENGINE environment variable ("exact" | "binned").
/// Defaults to kBinned: it is bit-identical to exact and faster. Models
/// whose binned compile failed (see BinnedForest::Compile) serve through
/// the exact engine regardless of this knob.
ForestEngine DefaultForestEngine();

/// Overrides the process-wide default (`serve --engine`, tests).
void SetDefaultForestEngine(ForestEngine engine);

/// Parses "exact" / "binned" (case-sensitive).
Result<ForestEngine> ParseForestEngine(std::string_view name);

/// Inverse of ParseForestEngine.
std::string_view ForestEngineName(ForestEngine engine);

/// \brief Immutable integer-compare ensemble scorer (class-1
/// probabilities), bit-identical to the FlatForest it was compiled from.
class BinnedForest {
 public:
  /// Rows scored per block; one block is binned and walked tree-major by
  /// one thread (same blocking as the exact engine).
  static constexpr size_t kBlockRows = FlatForest::kBlockRows;

  /// Compiles the binned form of `flat`. Fails — callers then keep the
  /// exact engine — when a feature has more than 65535 distinct
  /// thresholds or a feature index does not fit uint16; codes never
  /// truncate silently.
  static Result<BinnedForest> Compile(const FlatForest& flat);

  /// Class-1 probability of every row, chunked across `pool` (null =
  /// serial); bit-identical for any batch split or thread count.
  std::vector<double> PredictProba(FeatureMatrix rows,
                                   ThreadPool* pool) const;

  /// Same, writing into `out` (out.size() == rows.num_rows()).
  void PredictProbaInto(FeatureMatrix rows, std::span<double> out,
                        ThreadPool* pool) const;

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  /// Columns of the per-block code buffer (max tested feature + 1).
  size_t num_features() const { return edges_.num_features(); }
  /// True when some feature has >255 distinct thresholds, forcing uint16
  /// row codes instead of uint8.
  bool wide_codes() const { return wide_codes_; }

 private:
  // 8 bytes: eight nodes per cache line, twice the exact engine's
  // density. Field order is load-bearing for the AVX2 path, which
  // gathers {split | feature << 16} as one 32-bit word.
  struct Node {
    uint16_t split = 0;
    uint16_t feature = 0;
    int32_t right_delta = 0;
  };
  static_assert(sizeof(Node) == 8, "hot node must stay 8 bytes");

  BinnedForest() = default;

  template <typename Code>
  void ScoreBlock(FeatureMatrix rows, size_t lo, size_t hi, Code* codes,
                  double* out) const;

  std::vector<Node> nodes_;      // same numbering as the source FlatForest
  std::vector<uint32_t> roots_;  // index of each tree's root in nodes_
  // Cold sidecar: leaf node -> its index in leaf_values_ (-1 = internal).
  // Kept out of the hot node so descent touches only 8 bytes per step.
  std::vector<int32_t> leaf_slot_;
  std::vector<double> leaf_values_;
  ThresholdEdgeMap edges_;
  bool wide_codes_ = false;
  // Accumulation parameters copied verbatim from the exact engine.
  bool margin_kind_ = false;
  double base_margin_ = 0.0;
  double learning_rate_ = 1.0;
};

/// Compiles the binned engine from `flat`, or returns null when the
/// forest cannot be binned (logged, counted in
/// ml.binned_forest.compile_fallbacks) — callers then serve through the
/// exact engine.
std::shared_ptr<const BinnedForest> CompileBinnedOrNull(
    const FlatForest& flat);

}  // namespace telco

#endif  // TELCO_ML_BINNED_FOREST_H_
