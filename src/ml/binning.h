// Quantile feature binning.
//
// Three consumers:
//  * the tree learners use BinnedDataset codes for fast histogram split
//    search (each feature quantised to <= max_bins levels);
//  * the linear models use QuantileOneHotEncoder to produce the "discrete
//    binary features by preprocessing the original continuous feature
//    values" that the paper feeds LIBLINEAR and LIBFM (Section 5.8);
//  * the binned inference engine (ml/binned_forest.h) uses
//    ThresholdEdgeMap to turn a fitted ensemble's split thresholds into
//    per-feature integer codes whose compares reproduce the exact double
//    compares bit-for-bit.

#ifndef TELCO_ML_BINNING_H_
#define TELCO_ML_BINNING_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace telco {

/// \brief Per-feature quantile bin edges fitted on a training set.
class FeatureBinner {
 public:
  /// Fits up to `max_bins` quantile bins per feature (max 256).
  static Result<FeatureBinner> Fit(const Dataset& data, int max_bins = 64);

  size_t num_features() const { return edges_.size(); }

  /// Number of bins for feature j (edges + 1).
  int NumBins(size_t j) const { return static_cast<int>(edges_[j].size()) + 1; }

  /// Bin code of value v for feature j: the number of edges < v is the
  /// count of upper_bound over ascending edges; v <= edges[b] maps to b.
  uint8_t BinOf(size_t j, double v) const;

  /// Upper boundary value of bin b for feature j (the split threshold a
  /// tree stores when cutting after bin b). Precondition: b < NumBins-1.
  double UpperEdge(size_t j, int b) const { return edges_[j][b]; }

 private:
  // edges_[j] is the ascending list of bin upper boundaries (size bins-1).
  std::vector<std::vector<double>> edges_;
};

/// \brief A dataset's feature matrix quantised through a FeatureBinner.
struct BinnedDataset {
  const FeatureBinner* binner = nullptr;
  size_t num_rows = 0;
  size_t num_features = 0;
  std::vector<uint8_t> codes;  // row-major

  uint8_t Code(size_t row, size_t feature) const {
    return codes[row * num_features + feature];
  }
};

/// \brief Encodes a dataset through a fitted binner.
BinnedDataset EncodeBins(const FeatureBinner& binner, const Dataset& data);

/// \brief Per-feature sorted split-threshold edges compiled from a fitted
/// ensemble — the code book of the binned inference engine.
///
/// Unlike FeatureBinner (quantile edges estimated from training data),
/// the edges here are exactly the distinct thresholds the ensemble tests,
/// so integer compares over codes reproduce every `v <= threshold` double
/// compare: with ascending distinct edges e_0 < ... < e_{k-1} and
/// code(v) = |{i : e_i < v}| (a lower_bound count), `v <= e_i` holds iff
/// `code(v) <= i` for every non-NaN v (including v exactly equal to an
/// edge, ±0.0, denormals and ±inf). NaN row values map to the sentinel
/// code k, above every edge code, so they compare false against every
/// split and fall right — the IEEE behaviour of the exact engine.
class ThresholdEdgeMap {
 public:
  /// Builds the per-feature edge lists from raw threshold collections
  /// (one vector per feature; duplicates are deduped, NaN thresholds are
  /// dropped — a NaN split never compares true, so callers encode such
  /// nodes as unconditionally-right instead). Fails when any feature has
  /// more than 65535 distinct thresholds: codes are at most uint16 wide,
  /// and truncating would silently corrupt scores, so callers must stay
  /// on the exact engine instead.
  static Result<ThresholdEdgeMap> Build(
      const std::vector<std::vector<double>>& thresholds);

  size_t num_features() const { return offsets_.size() - 1; }

  /// Distinct edges stored for feature j.
  size_t NumEdges(size_t j) const { return offsets_[j + 1] - offsets_[j]; }

  /// Largest code any feature can produce (= max per-feature edge count,
  /// the NaN sentinel of the widest feature).
  size_t max_code() const { return max_edges_; }

  /// True when every code fits a uint8 row-code buffer; features with
  /// more than 255 distinct thresholds force the uint16 buffer instead
  /// of truncating.
  bool fits_uint8() const { return max_edges_ <= 0xFF; }

  /// Code of a threshold that Build stored for feature j (bins exactly
  /// like the values <= it). Precondition: `threshold` is one of the
  /// feature's edges.
  uint16_t CodeOf(size_t j, double threshold) const;

  /// Code of a row value: the number of feature-j edges < v, or the
  /// sentinel NumEdges(j) when v is NaN.
  uint16_t BinOf(size_t j, double v) const;

  /// Encodes row[0 .. num_features) into out, one branchless lower_bound
  /// per feature (Code is uint8_t or uint16_t; see fits_uint8()).
  template <typename Code>
  void EncodeRow(const double* row, Code* out) const {
    const double* const all = edges_.data();
    for (size_t j = 0; j + 1 < offsets_.size(); ++j) {
      const double* const first = all + offsets_[j];
      const size_t len = offsets_[j + 1] - offsets_[j];
      const double v = row[j];
      // Branchless lower_bound: halve the candidate range with a
      // conditional-move step; NaN compares false everywhere, so it is
      // remapped to the sentinel afterwards.
      const double* base = first;
      size_t n = len;
      while (n > 1) {
        const size_t half = n / 2;
        base += (base[half - 1] < v) ? half : 0;
        n -= half;
      }
      const size_t code =
          static_cast<size_t>(base - first) + ((n == 1 && *base < v) ? 1 : 0);
      out[j] = static_cast<Code>(std::isnan(v) ? len : code);
    }
  }

 private:
  std::vector<double> edges_;      // all features concatenated, ascending
  std::vector<uint32_t> offsets_;  // feature j owns [offsets_[j], offsets_[j+1])
  uint32_t max_edges_ = 0;
};

/// \brief Expands continuous features into one-hot bin indicators.
class QuantileOneHotEncoder {
 public:
  /// Fits bins on `data` (typically fewer bins than tree binning).
  static Result<QuantileOneHotEncoder> Fit(const Dataset& data,
                                           int max_bins = 16);

  /// Width of the encoded feature space.
  size_t EncodedWidth() const { return total_width_; }

  /// Transforms a dataset into indicator space (labels/weights carried over).
  Dataset Transform(const Dataset& data) const;

  /// Transforms a single row.
  std::vector<double> TransformRow(std::span<const double> row) const;

 private:
  FeatureBinner binner_;
  std::vector<size_t> offsets_;  // cumulative bin offsets per feature
  size_t total_width_ = 0;
  std::vector<std::string> encoded_names_;
};

}  // namespace telco

#endif  // TELCO_ML_BINNING_H_
