// Quantile feature binning.
//
// Two consumers:
//  * the tree learners use BinnedDataset codes for fast histogram split
//    search (each feature quantised to <= max_bins levels);
//  * the linear models use QuantileOneHotEncoder to produce the "discrete
//    binary features by preprocessing the original continuous feature
//    values" that the paper feeds LIBLINEAR and LIBFM (Section 5.8).

#ifndef TELCO_ML_BINNING_H_
#define TELCO_ML_BINNING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"

namespace telco {

/// \brief Per-feature quantile bin edges fitted on a training set.
class FeatureBinner {
 public:
  /// Fits up to `max_bins` quantile bins per feature (max 256).
  static Result<FeatureBinner> Fit(const Dataset& data, int max_bins = 64);

  size_t num_features() const { return edges_.size(); }

  /// Number of bins for feature j (edges + 1).
  int NumBins(size_t j) const { return static_cast<int>(edges_[j].size()) + 1; }

  /// Bin code of value v for feature j: the number of edges < v is the
  /// count of upper_bound over ascending edges; v <= edges[b] maps to b.
  uint8_t BinOf(size_t j, double v) const;

  /// Upper boundary value of bin b for feature j (the split threshold a
  /// tree stores when cutting after bin b). Precondition: b < NumBins-1.
  double UpperEdge(size_t j, int b) const { return edges_[j][b]; }

 private:
  // edges_[j] is the ascending list of bin upper boundaries (size bins-1).
  std::vector<std::vector<double>> edges_;
};

/// \brief A dataset's feature matrix quantised through a FeatureBinner.
struct BinnedDataset {
  const FeatureBinner* binner = nullptr;
  size_t num_rows = 0;
  size_t num_features = 0;
  std::vector<uint8_t> codes;  // row-major

  uint8_t Code(size_t row, size_t feature) const {
    return codes[row * num_features + feature];
  }
};

/// \brief Encodes a dataset through a fitted binner.
BinnedDataset EncodeBins(const FeatureBinner& binner, const Dataset& data);

/// \brief Expands continuous features into one-hot bin indicators.
class QuantileOneHotEncoder {
 public:
  /// Fits bins on `data` (typically fewer bins than tree binning).
  static Result<QuantileOneHotEncoder> Fit(const Dataset& data,
                                           int max_bins = 16);

  /// Width of the encoded feature space.
  size_t EncodedWidth() const { return total_width_; }

  /// Transforms a dataset into indicator space (labels/weights carried over).
  Dataset Transform(const Dataset& data) const;

  /// Transforms a single row.
  std::vector<double> TransformRow(std::span<const double> row) const;

 private:
  FeatureBinner binner_;
  std::vector<size_t> offsets_;  // cumulative bin offsets per feature
  size_t total_width_ = 0;
  std::vector<std::string> encoded_names_;
};

}  // namespace telco

#endif  // TELCO_ML_BINNING_H_
