// FeatureMatrix: the one batch-scoring currency of the ML layer.
//
// Every batch scoring surface (Classifier::PredictProbaBatch, the
// serving snapshot, the offline pipeline's prediction stage) consumes a
// FeatureMatrix — a non-owning rows x cols view over contiguous
// row-major doubles. A Dataset exposes its design matrix as one
// (Dataset::Matrix()); request batches pack their rows into a
// FeatureMatrixBuffer. Centralising on a view means a batch caller
// never copies feature rows into a labelled Dataset just to score them,
// and the flat-forest engine can walk raw row pointers block-at-a-time.

#ifndef TELCO_ML_FEATURE_MATRIX_H_
#define TELCO_ML_FEATURE_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"

namespace telco {

/// \brief Non-owning view of a dense row-major rows x cols double matrix.
///
/// The viewed storage must outlive the view (a Dataset, a
/// FeatureMatrixBuffer, or any caller-owned contiguous buffer).
class FeatureMatrix {
 public:
  /// An empty 0 x 0 view.
  constexpr FeatureMatrix() = default;

  /// Views `num_rows` rows of `num_cols` doubles starting at `data`.
  FeatureMatrix(const double* data, size_t num_rows, size_t num_cols)
      : data_(data), num_rows_(num_rows), num_cols_(num_cols) {
    TELCO_DCHECK(data != nullptr || num_rows == 0);
  }

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return num_cols_; }
  bool empty() const { return num_rows_ == 0; }

  /// First element of row 0 (rows are contiguous with stride num_cols).
  const double* data() const { return data_; }

  std::span<const double> Row(size_t i) const {
    TELCO_DCHECK(i < num_rows_);
    return std::span<const double>(data_ + i * num_cols_, num_cols_);
  }

  double At(size_t row, size_t col) const {
    TELCO_DCHECK(row < num_rows_ && col < num_cols_);
    return data_[row * num_cols_ + col];
  }

 private:
  const double* data_ = nullptr;
  size_t num_rows_ = 0;
  size_t num_cols_ = 0;
};

/// \brief Owning row packer: appends fixed-width rows into one contiguous
/// buffer and hands out a FeatureMatrix view of it.
///
/// This is how a batch of scoring requests (each owning its own feature
/// vector) becomes a FeatureMatrix without a Dataset's label/weight
/// bookkeeping.
class FeatureMatrixBuffer {
 public:
  explicit FeatureMatrixBuffer(size_t num_cols) : num_cols_(num_cols) {}

  void Reserve(size_t num_rows) { data_.reserve(num_rows * num_cols_); }

  /// Appends one row; `row.size()` must equal num_cols().
  void AddRow(std::span<const double> row) {
    TELCO_DCHECK(row.size() == num_cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }

  size_t num_rows() const {
    return num_cols_ == 0 ? 0 : data_.size() / num_cols_;
  }
  size_t num_cols() const { return num_cols_; }

  /// View over the packed rows; valid until the next AddRow/destruction.
  FeatureMatrix matrix() const {
    return FeatureMatrix(data_.data(), num_rows(), num_cols_);
  }

 private:
  size_t num_cols_;
  std::vector<double> data_;
};

}  // namespace telco

#endif  // TELCO_ML_FEATURE_MATRIX_H_
