// Ranking metrics of Section 5.1: AUC (Eq. 10), PR-AUC, R@U (Eq. 8) and
// P@U (Eq. 9), plus standard classification diagnostics.

#ifndef TELCO_ML_METRICS_H_
#define TELCO_ML_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace telco {

/// \brief One scored test instance: predicted churn likelihood and truth.
struct ScoredInstance {
  double score;
  bool positive;
};

/// \brief Area under the ROC curve via the rank formula of paper Eq. (10):
/// AUC = (sum of positive ranks - P(P+1)/2) / (P * N). Ties receive the
/// average rank. Returns 0.5 when either class is empty.
double Auc(const std::vector<ScoredInstance>& instances);

/// \brief Area under the precision-recall curve (trapezoidal over the
/// ranked sweep; the paper's preferred metric under class imbalance [10]).
/// Returns the positive prevalence when there are no positives.
double PrAuc(const std::vector<ScoredInstance>& instances);

/// \brief Recall@U (paper Eq. 8): true churners in the top U by score over
/// all true churners.
double RecallAtU(const std::vector<ScoredInstance>& instances, size_t u);

/// \brief Precision@U (paper Eq. 9): true churners in the top U over U —
/// the denominator is U itself, so ranking fewer than U instances caps
/// the attainable precision (a campaign of size U with too few candidates
/// wastes the remainder). Pass `cap_at_list_size = true` to divide by
/// min(U, |instances|) instead, for small test sets where the strict
/// denominator is not meaningful.
double PrecisionAtU(const std::vector<ScoredInstance>& instances, size_t u,
                    bool cap_at_list_size = false);

/// \brief Lift@U: precision@U over base positive rate.
double LiftAtU(const std::vector<ScoredInstance>& instances, size_t u);

/// The four headline metrics reported by every experiment table.
struct RankingMetrics {
  double auc = 0.0;
  double pr_auc = 0.0;
  double recall_at_u = 0.0;
  double precision_at_u = 0.0;
  size_t u = 0;

  std::string ToString() const;
};

/// \brief Computes AUC, PR-AUC, R@U and P@U in one pass over the ranking.
RankingMetrics EvaluateRanking(const std::vector<ScoredInstance>& instances,
                               size_t u);

/// \brief Binary confusion counts at a score threshold.
struct ConfusionMatrix {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t true_negatives = 0;
  size_t false_negatives = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
  double Accuracy() const;
};
ConfusionMatrix ComputeConfusion(const std::vector<ScoredInstance>& instances,
                                 double threshold);

/// \brief Weighted logistic loss of probabilities against binary truth.
double LogLoss(const std::vector<ScoredInstance>& instances);

}  // namespace telco

#endif  // TELCO_ML_METRICS_H_
