#include "ml/adaboost.h"

#include <cmath>
#include <numeric>

#include "common/math_util.h"
#include "common/rng.h"

namespace telco {

AdaBoost::AdaBoost(AdaBoostOptions options) : options_(options) {}

Status AdaBoost::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument("AdaBoost is binary-only");
  }
  if (options_.num_rounds < 1) {
    return Status::InvalidArgument("num_rounds must be >= 1");
  }
  TELCO_ASSIGN_OR_RETURN(const FeatureBinner binner,
                         FeatureBinner::Fit(data, 64));
  const BinnedDataset binned = EncodeBins(binner, data);
  const size_t n = data.num_rows();

  // Boosting weights start from the (normalised) instance weights, so
  // the imbalance strategies compose with boosting.
  std::vector<double> boost_weights(n);
  for (size_t i = 0; i < n; ++i) boost_weights[i] = data.weight(i);
  double total = std::accumulate(boost_weights.begin(), boost_weights.end(),
                                 0.0);
  if (total <= 0.0) {
    return Status::InvalidArgument("total instance weight is zero");
  }
  for (auto& w : boost_weights) w /= total;

  // Working copy whose weights we mutate per round.
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  Dataset weighted = data.Select(all);

  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_split = 2 * options_.min_samples_leaf;
  tree_options.min_samples_leaf = options_.min_samples_leaf;

  trees_.clear();
  alphas_.clear();
  Rng rng(options_.seed);
  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) weighted.set_weight(i, boost_weights[i]);
    ClassificationTree tree;
    TELCO_RETURN_NOT_OK(
        tree.Fit(binned, weighted, all, 2, tree_options, &rng, nullptr));

    // Weighted error of the hard prediction.
    std::vector<uint8_t> predictions(n);
    double err = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const auto proba = tree.PredictProba(data.Row(i));
      predictions[i] = proba[1] >= 0.5 ? 1 : 0;
      if (predictions[i] != static_cast<uint8_t>(data.label(i))) {
        err += boost_weights[i];
      }
    }
    if (err >= 0.5) break;        // weak learner no better than chance
    const bool perfect = err <= 1e-12;
    const double alpha =
        perfect ? 10.0 : 0.5 * std::log((1.0 - err) / err);
    trees_.push_back(std::move(tree));
    alphas_.push_back(alpha);
    if (perfect) break;

    // Reweight and renormalise.
    double new_total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const bool wrong =
          predictions[i] != static_cast<uint8_t>(data.label(i));
      boost_weights[i] *= std::exp(wrong ? alpha : -alpha);
      new_total += boost_weights[i];
    }
    for (auto& w : boost_weights) w /= new_total;
  }
  if (trees_.empty()) {
    return Status::Internal(
        "no weak learner beat chance on the first round");
  }
  return Status::OK();
}

double AdaBoost::PredictProba(std::span<const double> row) const {
  double margin = 0.0;
  double alpha_total = 0.0;
  for (size_t t = 0; t < trees_.size(); ++t) {
    const auto proba = trees_[t].PredictProba(row);
    margin += alphas_[t] * (proba[1] >= 0.5 ? 1.0 : -1.0);
    alpha_total += alphas_[t];
  }
  // Normalised vote margin through a logistic link keeps the score a
  // usable ranking probability.
  return Sigmoid(2.0 * margin / std::max(alpha_total, 1e-12));
}

}  // namespace telco
