#include "ml/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace telco {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

namespace {

Result<std::vector<const Column*>> ResolveNumericColumns(
    const Table& table, const std::vector<std::string>& names) {
  std::vector<const Column*> cols;
  cols.reserve(names.size());
  for (const auto& name : names) {
    TELCO_ASSIGN_OR_RETURN(const Column* col, table.GetColumn(name));
    if (col->type() == DataType::kString) {
      return Status::TypeError("feature column '" + name +
                               "' is a string column");
    }
    cols.push_back(col);
  }
  return cols;
}

}  // namespace

Result<Dataset> Dataset::FromTable(
    const Table& table, const std::vector<std::string>& feature_columns,
    const std::string& label_column) {
  TELCO_ASSIGN_OR_RETURN(const std::vector<const Column*> cols,
                         ResolveNumericColumns(table, feature_columns));
  TELCO_ASSIGN_OR_RETURN(const Column* label_col,
                         table.GetColumn(label_column));
  if (label_col->type() != DataType::kInt64) {
    return Status::TypeError("label column '" + label_column +
                             "' must be int64");
  }
  Dataset data(feature_columns);
  data.data_.reserve(table.num_rows() * feature_columns.size());
  data.labels_.reserve(table.num_rows());
  data.weights_.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const Column* col : cols) {
      data.data_.push_back(col->IsNull(r) ? 0.0 : col->GetNumeric(r));
    }
    if (label_col->IsNull(r)) {
      return Status::InvalidArgument(
          StrFormat("null label at row %zu", r));
    }
    const int64_t label = label_col->GetInt64(r);
    if (label < 0) {
      return Status::InvalidArgument(
          StrFormat("negative label %lld at row %zu",
                    static_cast<long long>(label), r));
    }
    data.labels_.push_back(static_cast<int>(label));
    data.weights_.push_back(1.0);
  }
  return data;
}

Result<Dataset> Dataset::FromTableUnlabeled(
    const Table& table, const std::vector<std::string>& feature_columns) {
  TELCO_ASSIGN_OR_RETURN(const std::vector<const Column*> cols,
                         ResolveNumericColumns(table, feature_columns));
  Dataset data(feature_columns);
  data.data_.reserve(table.num_rows() * feature_columns.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (const Column* col : cols) {
      data.data_.push_back(col->IsNull(r) ? 0.0 : col->GetNumeric(r));
    }
    data.labels_.push_back(0);
    data.weights_.push_back(1.0);
  }
  return data;
}

void Dataset::AddRow(std::span<const double> features, int label,
                     double weight) {
  TELCO_DCHECK(features.size() == num_features());
  data_.insert(data_.end(), features.begin(), features.end());
  labels_.push_back(label);
  weights_.push_back(weight);
}

int Dataset::NumClasses() const {
  int max_label = 1;
  for (int l : labels_) max_label = std::max(max_label, l);
  return max_label + 1;
}

double Dataset::TotalWeight() const {
  double total = 0.0;
  for (double w : weights_) total += w;
  return total;
}

Dataset Dataset::Select(const std::vector<size_t>& indices) const {
  Dataset out(feature_names_);
  out.data_.reserve(indices.size() * num_features());
  out.labels_.reserve(indices.size());
  out.weights_.reserve(indices.size());
  for (size_t idx : indices) {
    TELCO_DCHECK(idx < num_rows());
    const auto row = Row(idx);
    out.data_.insert(out.data_.end(), row.begin(), row.end());
    out.labels_.push_back(labels_[idx]);
    out.weights_.push_back(weights_[idx]);
  }
  return out;
}

Status Dataset::Append(const Dataset& other) {
  if (other.feature_names_ != feature_names_) {
    return Status::InvalidArgument("appending dataset with different schema");
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  weights_.insert(weights_.end(), other.weights_.begin(),
                  other.weights_.end());
  return Status::OK();
}

Dataset::Standardization Dataset::ComputeStandardization() const {
  const size_t n = num_rows();
  const size_t f = num_features();
  Standardization st;
  st.mean.assign(f, 0.0);
  st.stddev.assign(f, 1.0);
  if (n == 0) return st;
  for (size_t r = 0; r < n; ++r) {
    const auto row = Row(r);
    for (size_t j = 0; j < f; ++j) st.mean[j] += row[j];
  }
  for (size_t j = 0; j < f; ++j) st.mean[j] /= static_cast<double>(n);
  std::vector<double> var(f, 0.0);
  for (size_t r = 0; r < n; ++r) {
    const auto row = Row(r);
    for (size_t j = 0; j < f; ++j) {
      const double d = row[j] - st.mean[j];
      var[j] += d * d;
    }
  }
  for (size_t j = 0; j < f; ++j) {
    st.stddev[j] = std::max(std::sqrt(var[j] / static_cast<double>(n)), 1e-9);
  }
  return st;
}

TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> order(data.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t test_n = static_cast<size_t>(
      std::llround(test_fraction * static_cast<double>(order.size())));
  std::vector<size_t> test_idx(order.begin(), order.begin() + test_n);
  std::vector<size_t> train_idx(order.begin() + test_n, order.end());
  return TrainTestSplit{data.Select(train_idx), data.Select(test_idx)};
}

}  // namespace telco
