#include "ml/flat_forest.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/thread_pool.h"

namespace telco {

namespace {

struct FlatForestMetrics {
  Histogram compile_seconds;
  Counter nodes;
  Counter batch_rows;
};

const FlatForestMetrics& Metrics() {
  static const FlatForestMetrics* const m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new FlatForestMetrics{
        r.GetHistogram("ml.flat_forest.compile_seconds"),
        r.GetCounter("ml.flat_forest.nodes"),
        r.GetCounter("ml.flat_forest.batch_rows"),
    };
  }();
  return *m;
}

}  // namespace

template <typename SrcNode, typename LeafValueFn>
Status FlatForest::FlattenTree(const std::vector<SrcNode>& src,
                               const LeafValueFn& leaf_value) {
  if (src.empty()) {
    return Status::InvalidArgument("cannot compile an empty tree");
  }
  roots_.push_back(static_cast<uint32_t>(nodes_.size()));
  // Preorder DFS with an explicit stack: (source node, flat index of the
  // parent whose right_delta this node resolves; -1 = a left child or
  // the root, which is always adjacent to its parent).
  std::vector<std::pair<int32_t, int64_t>> stack;
  stack.emplace_back(0, -1);
  size_t emitted = 0;
  while (!stack.empty()) {
    const auto [src_id, patch] = stack.back();
    stack.pop_back();
    if (src_id < 0 || static_cast<size_t>(src_id) >= src.size()) {
      return Status::InvalidArgument("tree child index out of range");
    }
    if (++emitted > src.size()) {
      return Status::InvalidArgument("tree topology has a cycle");
    }
    const int64_t flat = static_cast<int64_t>(nodes_.size());
    if (patch >= 0) {
      nodes_[patch].right_delta = static_cast<int32_t>(flat - patch);
    }
    const SrcNode& n = src[src_id];
    Node out;
    if (n.feature < 0) {
      if (leaf_values_.size() >=
          static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
        return Status::InvalidArgument("forest exceeds 2^31 leaves");
      }
      out.feature = -1;
      out.right_delta = static_cast<int32_t>(leaf_values_.size());
      leaf_values_.push_back(leaf_value(n));
    } else {
      out.threshold = n.threshold;
      out.feature = n.feature;
      // Right is pushed first so the left subtree pops (and is emitted
      // adjacent) first; right_delta is patched when the right pops.
      stack.emplace_back(n.right, flat);
      stack.emplace_back(n.left, -1);
    }
    nodes_.push_back(out);
    if (nodes_.size() >=
        static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
      return Status::InvalidArgument("forest exceeds 2^31 nodes");
    }
  }
  return Status::OK();
}

Result<FlatForest> FlatForest::CompileAverage(
    const std::vector<ClassificationTree>& trees) {
  if (trees.empty()) {
    return Status::InvalidArgument("cannot compile an empty forest");
  }
  Stopwatch watch;
  FlatForest flat;
  flat.kind_ = Kind::kAverage;
  std::vector<ClassificationTree::SerializedNode> src;
  std::vector<double> leaf_proba;
  for (const ClassificationTree& tree : trees) {
    tree.Export(&src, &leaf_proba);
    // A leaf's contribution is its class-1 probability — the exact
    // double PredictProba(row)[1] returns.
    TELCO_RETURN_NOT_OK(flat.FlattenTree(
        src, [&leaf_proba](const ClassificationTree::SerializedNode& n) {
          return leaf_proba[static_cast<size_t>(n.proba_offset) + 1];
        }));
  }
  Metrics().nodes.Add(flat.nodes_.size());
  Metrics().compile_seconds.Observe(watch.ElapsedSeconds());
  return flat;
}

Result<FlatForest> FlatForest::CompileMargin(
    const std::vector<RegressionTree>& trees, double base_margin,
    double learning_rate) {
  if (trees.empty()) {
    return Status::InvalidArgument("cannot compile an empty forest");
  }
  Stopwatch watch;
  FlatForest flat;
  flat.kind_ = Kind::kMargin;
  flat.base_margin_ = base_margin;
  flat.learning_rate_ = learning_rate;
  std::vector<RegressionTree::SerializedNode> src;
  for (const RegressionTree& tree : trees) {
    tree.Export(&src);
    TELCO_RETURN_NOT_OK(flat.FlattenTree(
        src,
        [](const RegressionTree::SerializedNode& n) { return n.value; }));
  }
  Metrics().nodes.Add(flat.nodes_.size());
  Metrics().compile_seconds.Observe(watch.ElapsedSeconds());
  return flat;
}

void FlatForest::ScoreBlock(FeatureMatrix rows, size_t lo, size_t hi,
                            double* out) const {
  const size_t cols = rows.num_cols();
  const double* const base = rows.data() + lo * cols;
  const size_t n = hi - lo;
  double acc[kBlockRows];
  const double init = kind_ == Kind::kMargin ? base_margin_ : 0.0;
  for (size_t r = 0; r < n; ++r) acc[r] = init;

  // Tree-major: one tree's nodes stay hot while every row of the block
  // walks it; per-row accumulation still happens in tree order, so the
  // arithmetic matches the pointer walk exactly.
  const Node* const arena = nodes_.data();
  for (const uint32_t root : roots_) {
    const Node* const tree = arena + root;
    for (size_t r = 0; r < n; ++r) {
      const double* const row = base + r * cols;
      const Node* node = tree;
      while (node->feature >= 0) {
        // NaN compares false and falls right, like the pointer walk.
        node += row[node->feature] <= node->threshold ? 1
                                                      : node->right_delta;
      }
      const double leaf = leaf_values_[node->right_delta];
      acc[r] += kind_ == Kind::kMargin ? learning_rate_ * leaf : leaf;
    }
  }

  if (kind_ == Kind::kAverage) {
    const double divisor = static_cast<double>(roots_.size());
    for (size_t r = 0; r < n; ++r) out[lo + r] = acc[r] / divisor;
  } else {
    for (size_t r = 0; r < n; ++r) out[lo + r] = Sigmoid(acc[r]);
  }
}

void FlatForest::PredictProbaInto(FeatureMatrix rows, std::span<double> out,
                                  ThreadPool* pool) const {
  TELCO_CHECK(out.size() == rows.num_rows());
  TELCO_DCHECK(!roots_.empty());
  if (rows.empty()) return;
  Metrics().batch_rows.Add(rows.num_rows());
  // One chunk per block keeps the grid independent of the pool size;
  // rows are scored whole, so any grid gives bit-identical output.
  const size_t num_blocks = (rows.num_rows() + kBlockRows - 1) / kBlockRows;
  RunParallelChunks(pool, 0, rows.num_rows(), num_blocks,
                    [&](size_t, size_t lo, size_t hi) {
                      for (size_t b = lo; b < hi; b += kBlockRows) {
                        ScoreBlock(rows, b, std::min(b + kBlockRows, hi),
                                   out.data());
                      }
                    });
}

std::vector<double> FlatForest::PredictProba(FeatureMatrix rows,
                                             ThreadPool* pool) const {
  std::vector<double> out(rows.num_rows(), 0.0);
  PredictProbaInto(rows, out, pool);
  return out;
}

}  // namespace telco
