// Feature-drift monitoring via the Population Stability Index (PSI).
//
// The paper's Volume/Velocity findings hinge on non-stationarity ("the
// churner behaviors in Month 1 may be quite different from those in
// Month 7"); a deployed monthly-retrained system needs to *measure* that
// drift. PSI is the standard telco/scoring industry statistic:
//
//   PSI = sum_bins (p_cur - p_ref) * ln(p_cur / p_ref)
//
// with the conventional reading: < 0.1 stable, 0.1-0.25 moderate drift,
// > 0.25 significant drift (retrain).

#ifndef TELCO_ML_DRIFT_H_
#define TELCO_ML_DRIFT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ml/binning.h"

namespace telco {

/// Drift of a single feature between a reference and a current dataset.
struct FeatureDrift {
  std::string feature;
  double psi = 0.0;
};

/// Result of a dataset-level drift check.
struct DriftReport {
  /// Per-feature PSI, sorted by descending PSI.
  std::vector<FeatureDrift> features;

  /// The largest per-feature PSI.
  double MaxPsi() const;
  /// Mean PSI across features.
  double MeanPsi() const;
  /// Features whose PSI exceeds the threshold (default: "significant").
  std::vector<std::string> DriftedFeatures(double threshold = 0.25) const;
};

/// \brief Computes per-feature PSI between `reference` (the training
/// month) and `current` (the scoring month). Both datasets must share
/// the same feature layout; bins are fitted on the reference.
Result<DriftReport> ComputeDrift(const Dataset& reference,
                                 const Dataset& current, int bins = 10);

}  // namespace telco

#endif  // TELCO_ML_DRIFT_H_
