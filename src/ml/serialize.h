// Model persistence: the deployed system retrains monthly and serves the
// current model between retrains, so forests must round-trip to disk.
//
// Format: a versioned line-oriented text format — debuggable, portable,
// and byte-exact for doubles (hex float literals).

#ifndef TELCO_ML_SERIALIZE_H_
#define TELCO_ML_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "ml/random_forest.h"

namespace telco {

/// \brief Writes a fitted forest to a stream.
Status WriteRandomForest(const RandomForest& forest, std::ostream& out);

/// \brief Reads a forest written by WriteRandomForest.
Result<RandomForest> ReadRandomForest(std::istream& in);

/// \brief File-level convenience wrappers.
Status SaveRandomForest(const RandomForest& forest, const std::string& path);
Result<RandomForest> LoadRandomForest(const std::string& path);

}  // namespace telco

#endif  // TELCO_ML_SERIALIZE_H_
