// Model persistence: the deployed system retrains monthly and serves the
// current model between retrains, so forests must round-trip to disk.
//
// Format: a versioned line-oriented text format — debuggable, portable,
// and byte-exact for doubles (hex float literals).

#ifndef TELCO_ML_SERIALIZE_H_
#define TELCO_ML_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "ml/random_forest.h"

namespace telco {

/// \brief Writes a fitted forest to a stream.
Status WriteRandomForest(const RandomForest& forest, std::ostream& out);

/// \brief Reads a forest written by WriteRandomForest.
Result<RandomForest> ReadRandomForest(std::istream& in);

/// \brief Saves a forest to `path` atomically (tmp-write-fsync-rename)
/// with a trailing `crc32 <8 hex>` line covering every byte above it.
Status SaveRandomForest(const RandomForest& forest, const std::string& path);

/// \brief Loads a file written by SaveRandomForest, verifying the
/// checksum trailer before parsing (fail-closed: a truncated, corrupt or
/// trailer-less file is an IoError). Transient read failures are retried
/// with backoff.
Result<RandomForest> LoadRandomForest(const std::string& path);

/// \brief CRC32 of the forest's canonical serialised form — the same
/// value SaveRandomForest writes into the checksum trailer, so an
/// in-memory forest and the file it round-trips through share one
/// fingerprint (used by serving snapshots to identify the model).
Result<uint32_t> ForestChecksum(const RandomForest& forest);

}  // namespace telco

#endif  // TELCO_ML_SERIALIZE_H_
