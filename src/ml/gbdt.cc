#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/telemetry/trace.h"

namespace telco {

Gbdt::Gbdt(GbdtOptions options) : options_(options) {}

Status Gbdt::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument("Gbdt is binary-only");
  }
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  TELCO_ASSIGN_OR_RETURN(const FeatureBinner binner,
                         FeatureBinner::Fit(data, 64));
  const BinnedDataset binned = EncodeBins(binner, data);

  // Base margin: weighted log-odds of the positive class.
  double pos_weight = 0.0;
  double total_weight = 0.0;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    total_weight += data.weight(i);
    if (data.label(i) == 1) pos_weight += data.weight(i);
  }
  base_margin_ = Logit(pos_weight / std::max(total_weight, 1e-12));

  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_split = options_.min_samples_split;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = 0;  // GBDT uses all features per node.

  const size_t n = data.num_rows();
  std::vector<double> margin(n, base_margin_);
  std::vector<double> grad(n);
  std::vector<double> hess(n);
  Rng rng(options_.seed);

  static const Counter trees_fitted =
      MetricsRegistry::Global().GetCounter("ml.gbdt.trees_fitted");
  static const Counter nodes_total =
      MetricsRegistry::Global().GetCounter("ml.gbdt.nodes");
  static const Histogram tree_fit_seconds =
      MetricsRegistry::Global().GetHistogram("ml.gbdt.tree_fit_seconds");
  TraceSpan fit_span(StrFormat("ml.gbdt.fit:%d_trees", options_.num_trees));

  trees_.clear();
  trees_.reserve(options_.num_trees);
  for (int t = 0; t < options_.num_trees; ++t) {
    TraceSpan tree_span(StrFormat("ml.gbdt.tree:%d", t));
    Stopwatch tree_watch;
    for (size_t i = 0; i < n; ++i) {
      const double p = Sigmoid(margin[i]);
      const double y = data.label(i) == 1 ? 1.0 : 0.0;
      const double w = data.weight(i);
      grad[i] = w * (p - y);
      hess[i] = std::max(w * p * (1.0 - p), 1e-12);
    }
    std::vector<size_t> sample;
    if (options_.subsample < 1.0) {
      sample.reserve(static_cast<size_t>(options_.subsample * n) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(options_.subsample)) sample.push_back(i);
      }
      if (sample.empty()) sample.push_back(rng.UniformInt(n));
    } else {
      sample.resize(n);
      for (size_t i = 0; i < n; ++i) sample[i] = i;
    }
    RegressionTree tree;
    TELCO_RETURN_NOT_OK(tree.Fit(binned, grad, hess, sample, tree_options,
                                 options_.lambda, &rng));
    for (size_t i = 0; i < n; ++i) {
      margin[i] += options_.learning_rate * tree.Predict(data.Row(i));
    }
    tree_fit_seconds.Observe(tree_watch.ElapsedSeconds());
    trees_fitted.Add();
    nodes_total.Add(tree.num_nodes());
    trees_.push_back(std::move(tree));
  }
  TELCO_ASSIGN_OR_RETURN(
      FlatForest flat,
      FlatForest::CompileMargin(trees_, base_margin_,
                                options_.learning_rate));
  flat_ = std::make_shared<const FlatForest>(std::move(flat));
  binned_ = CompileBinnedOrNull(*flat_);
  return Status::OK();
}

std::vector<double> Gbdt::PredictProbaBatch(FeatureMatrix rows,
                                            ThreadPool* pool) const {
  if (binned_ != nullptr &&
      DefaultForestEngine() == ForestEngine::kBinned) {
    return binned_->PredictProba(rows, pool);
  }
  if (flat_ == nullptr) return Classifier::PredictProbaBatch(rows, pool);
  return flat_->PredictProba(rows, pool);
}

double Gbdt::PredictMargin(std::span<const double> row) const {
  double margin = base_margin_;
  for (const auto& tree : trees_) {
    margin += options_.learning_rate * tree.Predict(row);
  }
  return margin;
}

double Gbdt::PredictProba(std::span<const double> row) const {
  return Sigmoid(PredictMargin(row));
}

}  // namespace telco
