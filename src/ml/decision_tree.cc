#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"

namespace telco {

namespace {

// Gini index of a weighted class histogram (paper Eq. 6 generalised to C
// classes): G = 1 - sum_c p_c^2.
double GiniIndex(const std::vector<double>& class_weights, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double w : class_weights) {
    const double p = w / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

// Samples `k` distinct feature indices out of `n` (or all when k >= n).
std::vector<size_t> SampleFeatures(size_t n, size_t k, Rng* rng) {
  if (k == 0 || k >= n) {
    std::vector<size_t> all(n);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  return rng->SampleWithoutReplacement(n, k);
}

}  // namespace

// ------------------------------------------------------- ClassificationTree

Status ClassificationTree::Fit(const BinnedDataset& binned,
                               const Dataset& data,
                               const std::vector<size_t>& indices,
                               int num_classes, const TreeOptions& options,
                               Rng* rng, std::vector<double>* importance) {
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  if (indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  if (binned.num_rows != data.num_rows()) {
    return Status::InvalidArgument("binned/raw row count mismatch");
  }
  num_classes_ = num_classes;
  nodes_.clear();
  leaf_proba_.clear();
  double total_weight = 0.0;
  for (size_t idx : indices) total_weight += data.weight(idx);
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("total instance weight is zero");
  }
  std::vector<size_t> work(indices);
  BuildNode(binned, data, work, 0, options, rng, importance, total_weight);
  return Status::OK();
}

size_t ClassificationTree::BuildNode(
    const BinnedDataset& binned, const Dataset& data,
    std::vector<size_t>& node_indices, int depth, const TreeOptions& options,
    Rng* rng, std::vector<double>* importance, double total_weight) {
  const size_t node_id = nodes_.size();
  nodes_.emplace_back();

  // Node class histogram.
  std::vector<double> class_weights(num_classes_, 0.0);
  double node_weight = 0.0;
  for (size_t idx : node_indices) {
    class_weights[data.label(idx)] += data.weight(idx);
    node_weight += data.weight(idx);
  }
  const double parent_gini = GiniIndex(class_weights, node_weight);

  auto make_leaf = [&] {
    Node& node = nodes_[node_id];
    node.proba_offset = static_cast<int32_t>(leaf_proba_.size());
    for (int c = 0; c < num_classes_; ++c) {
      leaf_proba_.push_back(node_weight > 0.0
                                ? class_weights[c] / node_weight
                                : 1.0 / num_classes_);
    }
    return node_id;
  };

  const bool pure = parent_gini <= 0.0;
  if (pure || depth >= options.max_depth ||
      node_indices.size() < options.min_samples_split) {
    return make_leaf();
  }

  // Split search over a random feature subspace.
  const std::vector<size_t> features =
      SampleFeatures(binned.num_features, options.max_features, rng);

  double best_improvement = options.min_improvement;
  int best_feature = -1;
  int best_bin = -1;

  // Per-(bin, class) weight histogram, plus per-bin instance counts for
  // the min_samples_leaf constraint.
  std::vector<double> hist;
  std::vector<size_t> bin_counts;
  for (size_t j : features) {
    const int num_bins = binned.binner->NumBins(j);
    if (num_bins < 2) continue;
    hist.assign(static_cast<size_t>(num_bins) * num_classes_, 0.0);
    bin_counts.assign(num_bins, 0);
    for (size_t idx : node_indices) {
      const uint8_t code = binned.Code(idx, j);
      hist[static_cast<size_t>(code) * num_classes_ + data.label(idx)] +=
          data.weight(idx);
      ++bin_counts[code];
    }
    // Prefix scan: cutting after bin b sends bins [0, b] left.
    std::vector<double> left(num_classes_, 0.0);
    double left_weight = 0.0;
    size_t left_count = 0;
    for (int b = 0; b + 1 < num_bins; ++b) {
      for (int c = 0; c < num_classes_; ++c) {
        left[c] += hist[static_cast<size_t>(b) * num_classes_ + c];
      }
      left_count += bin_counts[b];
      left_weight = std::accumulate(left.begin(), left.end(), 0.0);
      const size_t right_count = node_indices.size() - left_count;
      if (left_count < options.min_samples_leaf ||
          right_count < options.min_samples_leaf) {
        continue;
      }
      if (left_weight <= 0.0 || left_weight >= node_weight) continue;
      std::vector<double> right(num_classes_);
      for (int c = 0; c < num_classes_; ++c) {
        right[c] = class_weights[c] - left[c];
      }
      const double right_weight = node_weight - left_weight;
      const double q = left_weight / node_weight;
      const double improvement = parent_gini -
                                 q * GiniIndex(left, left_weight) -
                                 (1.0 - q) * GiniIndex(right, right_weight);
      if (improvement > best_improvement) {
        best_improvement = improvement;
        best_feature = static_cast<int>(j);
        best_bin = b;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  if (importance != nullptr) {
    TELCO_DCHECK(importance->size() == binned.num_features);
    // Eq. (7) summed with the standard node-weight fraction so shallow,
    // high-coverage splits dominate deep noise splits.
    (*importance)[best_feature] +=
        best_improvement * (node_weight / total_weight);
  }

  // Partition the node rows in place.
  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  left_rows.reserve(node_indices.size());
  right_rows.reserve(node_indices.size());
  for (size_t idx : node_indices) {
    if (binned.Code(idx, best_feature) <= best_bin) {
      left_rows.push_back(idx);
    } else {
      right_rows.push_back(idx);
    }
  }
  node_indices.clear();
  node_indices.shrink_to_fit();

  const double threshold =
      binned.binner->UpperEdge(static_cast<size_t>(best_feature), best_bin);
  const size_t left_id = BuildNode(binned, data, left_rows, depth + 1,
                                   options, rng, importance, total_weight);
  const size_t right_id = BuildNode(binned, data, right_rows, depth + 1,
                                    options, rng, importance, total_weight);
  Node& node = nodes_[node_id];
  node.feature = best_feature;
  node.threshold = threshold;
  node.left = static_cast<int32_t>(left_id);
  node.right = static_cast<int32_t>(right_id);
  return node_id;
}

std::span<const double> ClassificationTree::PredictProba(
    std::span<const double> row) const {
  TELCO_DCHECK(!nodes_.empty());
  size_t id = 0;
  while (nodes_[id].feature >= 0) {
    const Node& node = nodes_[id];
    id = row[node.feature] <= node.threshold
             ? static_cast<size_t>(node.left)
             : static_cast<size_t>(node.right);
  }
  return std::span<const double>(
      leaf_proba_.data() + nodes_[id].proba_offset, num_classes_);
}

void ClassificationTree::Export(std::vector<SerializedNode>* nodes,
                                std::vector<double>* leaf_proba) const {
  nodes->clear();
  nodes->reserve(nodes_.size());
  for (const Node& n : nodes_) {
    nodes->push_back(
        SerializedNode{n.feature, n.threshold, n.left, n.right,
                       n.proba_offset});
  }
  *leaf_proba = leaf_proba_;
}

Result<ClassificationTree> ClassificationTree::Import(
    const std::vector<SerializedNode>& nodes,
    std::vector<double> leaf_proba, int num_classes) {
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  if (nodes.empty()) {
    return Status::InvalidArgument("tree must have at least one node");
  }
  const auto n = static_cast<int64_t>(nodes.size());
  for (const SerializedNode& node : nodes) {
    if (node.feature < 0) {
      // Leaf: its class distribution must fit the probability array.
      if (node.proba_offset < 0 ||
          node.proba_offset + num_classes >
              static_cast<int64_t>(leaf_proba.size())) {
        return Status::InvalidArgument("leaf probability offset invalid");
      }
    } else {
      if (node.left < 0 || node.left >= n || node.right < 0 ||
          node.right >= n) {
        return Status::InvalidArgument("child index out of range");
      }
    }
  }
  ClassificationTree tree;
  tree.num_classes_ = num_classes;
  tree.leaf_proba_ = std::move(leaf_proba);
  tree.nodes_.reserve(nodes.size());
  for (const SerializedNode& node : nodes) {
    tree.nodes_.push_back(Node{node.feature, node.threshold, node.left,
                               node.right, node.proba_offset});
  }
  return tree;
}

// ----------------------------------------------------------- RegressionTree

Status RegressionTree::Fit(const BinnedDataset& binned,
                           std::span<const double> grad,
                           std::span<const double> hess,
                           const std::vector<size_t>& indices,
                           const TreeOptions& options, double lambda,
                           Rng* rng) {
  if (indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on zero rows");
  }
  if (grad.size() != binned.num_rows || hess.size() != binned.num_rows) {
    return Status::InvalidArgument("gradient size mismatch");
  }
  nodes_.clear();
  std::vector<size_t> work(indices);
  BuildNode(binned, grad, hess, work, 0, options, lambda, rng);
  return Status::OK();
}

size_t RegressionTree::BuildNode(const BinnedDataset& binned,
                                 std::span<const double> grad,
                                 std::span<const double> hess,
                                 std::vector<size_t>& node_indices, int depth,
                                 const TreeOptions& options, double lambda,
                                 Rng* rng) {
  const size_t node_id = nodes_.size();
  nodes_.emplace_back();

  double g_total = 0.0;
  double h_total = 0.0;
  for (size_t idx : node_indices) {
    g_total += grad[idx];
    h_total += hess[idx];
  }
  const double parent_score = g_total * g_total / (h_total + lambda);

  auto make_leaf = [&] {
    nodes_[node_id].value = -g_total / (h_total + lambda);
    return node_id;
  };

  if (depth >= options.max_depth ||
      node_indices.size() < options.min_samples_split) {
    return make_leaf();
  }

  const std::vector<size_t> features =
      SampleFeatures(binned.num_features, options.max_features, rng);

  double best_gain = options.min_improvement;
  int best_feature = -1;
  int best_bin = -1;

  std::vector<double> g_hist;
  std::vector<double> h_hist;
  std::vector<size_t> bin_counts;
  for (size_t j : features) {
    const int num_bins = binned.binner->NumBins(j);
    if (num_bins < 2) continue;
    g_hist.assign(num_bins, 0.0);
    h_hist.assign(num_bins, 0.0);
    bin_counts.assign(num_bins, 0);
    for (size_t idx : node_indices) {
      const uint8_t code = binned.Code(idx, j);
      g_hist[code] += grad[idx];
      h_hist[code] += hess[idx];
      ++bin_counts[code];
    }
    double g_left = 0.0;
    double h_left = 0.0;
    size_t left_count = 0;
    for (int b = 0; b + 1 < num_bins; ++b) {
      g_left += g_hist[b];
      h_left += h_hist[b];
      left_count += bin_counts[b];
      const size_t right_count = node_indices.size() - left_count;
      if (left_count < options.min_samples_leaf ||
          right_count < options.min_samples_leaf) {
        continue;
      }
      const double g_right = g_total - g_left;
      const double h_right = h_total - h_left;
      // Newton gain (the 1/2 factor is constant and omitted).
      const double gain = g_left * g_left / (h_left + lambda) +
                          g_right * g_right / (h_right + lambda) -
                          parent_score;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(j);
        best_bin = b;
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<size_t> left_rows;
  std::vector<size_t> right_rows;
  left_rows.reserve(node_indices.size());
  right_rows.reserve(node_indices.size());
  for (size_t idx : node_indices) {
    if (binned.Code(idx, best_feature) <= best_bin) {
      left_rows.push_back(idx);
    } else {
      right_rows.push_back(idx);
    }
  }
  node_indices.clear();
  node_indices.shrink_to_fit();

  const double threshold =
      binned.binner->UpperEdge(static_cast<size_t>(best_feature), best_bin);
  const size_t left_id = BuildNode(binned, grad, hess, left_rows, depth + 1,
                                   options, lambda, rng);
  const size_t right_id = BuildNode(binned, grad, hess, right_rows,
                                    depth + 1, options, lambda, rng);
  Node& node = nodes_[node_id];
  node.feature = best_feature;
  node.threshold = threshold;
  node.left = static_cast<int32_t>(left_id);
  node.right = static_cast<int32_t>(right_id);
  return node_id;
}

void RegressionTree::Export(std::vector<SerializedNode>* nodes) const {
  nodes->clear();
  nodes->reserve(nodes_.size());
  for (const Node& n : nodes_) {
    nodes->push_back(
        SerializedNode{n.feature, n.threshold, n.left, n.right, n.value});
  }
}

double RegressionTree::Predict(std::span<const double> row) const {
  TELCO_DCHECK(!nodes_.empty());
  size_t id = 0;
  while (nodes_[id].feature >= 0) {
    const Node& node = nodes_[id];
    id = row[node.feature] <= node.threshold
             ? static_cast<size_t>(node.left)
             : static_cast<size_t>(node.right);
  }
  return nodes_[id].value;
}

}  // namespace telco
