#include "ml/fm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace telco {

namespace {
// Stability bounds for SGD updates (see Fit).
constexpr double kMaxUpdate = 1.0;
constexpr double kMaxLatent = 10.0;
}  // namespace

FactorizationMachine::FactorizationMachine(
    FactorizationMachineOptions options)
    : options_(options) {}

Status FactorizationMachine::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument("FactorizationMachine is binary-only");
  }
  if (options_.latent_dim < 1) {
    return Status::InvalidArgument("latent_dim must be >= 1");
  }
  const size_t n = data.num_rows();
  const size_t f = data.num_features();
  const int k = options_.latent_dim;
  num_features_ = f;

  standardized_ = options_.standardize;
  if (standardized_) standardization_ = data.ComputeStandardization();

  Rng rng(options_.seed);
  w0_ = 0.0;
  w_.assign(f, 0.0);
  v_.resize(f * k);
  for (auto& v : v_) v = rng.Gaussian(0.0, options_.init_scale);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> x(f);
  std::vector<double> sum_vx(k);

  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const auto raw = data.Row(idx);
      for (size_t j = 0; j < f; ++j) {
        x[j] = standardized_ ? (raw[j] - standardization_.mean[j]) /
                                   standardization_.stddev[j]
                             : raw[j];
      }
      // Margin via the O(f k) identity:
      // sum_{i<j} <v_i,v_j> x_i x_j = 1/2 sum_d [(sum_i v_id x_i)^2
      //                                          - sum_i v_id^2 x_i^2].
      double margin = w0_;
      double sum_sq = 0.0;
      std::fill(sum_vx.begin(), sum_vx.end(), 0.0);
      for (size_t j = 0; j < f; ++j) {
        margin += w_[j] * x[j];
        const double* vj = &v_[j * k];
        for (int d = 0; d < k; ++d) {
          const double vx = vj[d] * x[j];
          sum_vx[d] += vx;
          sum_sq += vx * vx;
        }
      }
      double pair_term = 0.0;
      for (int d = 0; d < k; ++d) pair_term += sum_vx[d] * sum_vx[d];
      margin += 0.5 * (pair_term - sum_sq);

      const double p = Sigmoid(margin);
      const double y = data.label(idx) == 1 ? 1.0 : 0.0;
      const double lr = options_.learning_rate /
                        std::sqrt(1.0 + static_cast<double>(step) / n);
      const double g = data.weight(idx) * (p - y);

      w0_ -= lr * g;
      for (size_t j = 0; j < f; ++j) {
        if (x[j] == 0.0) {
          // Regularisation-only updates are skipped for zero inputs
          // (LIBFM's sparse-update behaviour).
          continue;
        }
        w_[j] -= lr * Clamp(g * x[j] + options_.l2_linear * w_[j],
                            -kMaxUpdate, kMaxUpdate);
        double* vj = &v_[j * k];
        for (int d = 0; d < k; ++d) {
          const double grad_v = x[j] * (sum_vx[d] - vj[d] * x[j]);
          // Clipped updates and bounded latents keep the pair term from
          // blowing up under the paper's aggressive 0.1 learning rate
          // (unbounded, diverging latents also sink training into
          // denormal-arithmetic slow paths).
          vj[d] -= lr * Clamp(g * grad_v + options_.l2_latent * vj[d],
                              -kMaxUpdate, kMaxUpdate);
          vj[d] = Clamp(vj[d], -kMaxLatent, kMaxLatent);
        }
      }
      ++step;
    }
  }
  return Status::OK();
}

double FactorizationMachine::PredictMargin(
    std::span<const double> row, std::vector<double>* x_buffer) const {
  const size_t f = num_features_;
  const int k = options_.latent_dim;
  auto& x = *x_buffer;
  x.resize(f);
  for (size_t j = 0; j < f; ++j) {
    const double raw = j < row.size() ? row[j] : 0.0;
    x[j] = standardized_ ? (raw - standardization_.mean[j]) /
                               standardization_.stddev[j]
                         : raw;
  }
  double margin = w0_;
  double sum_sq = 0.0;
  std::vector<double> sum_vx(k, 0.0);
  for (size_t j = 0; j < f; ++j) {
    margin += w_[j] * x[j];
    const double* vj = &v_[j * k];
    for (int d = 0; d < k; ++d) {
      const double vx = vj[d] * x[j];
      sum_vx[d] += vx;
      sum_sq += vx * vx;
    }
  }
  double pair_term = 0.0;
  for (int d = 0; d < k; ++d) pair_term += sum_vx[d] * sum_vx[d];
  return margin + 0.5 * (pair_term - sum_sq);
}

double FactorizationMachine::PredictProba(std::span<const double> row) const {
  std::vector<double> buffer;
  return Sigmoid(PredictMargin(row, &buffer));
}

double FactorizationMachine::PairWeight(size_t i, size_t j) const {
  TELCO_DCHECK(i < num_features_ && j < num_features_);
  const int k = options_.latent_dim;
  const double* vi = &v_[i * k];
  const double* vj = &v_[j * k];
  double dot = 0.0;
  for (int d = 0; d < k; ++d) dot += vi[d] * vj[d];
  return dot;
}

std::vector<FactorizationMachine::RankedPair>
FactorizationMachine::RankPairWeights(size_t top_k) const {
  std::vector<RankedPair> pairs;
  pairs.reserve(num_features_ * (num_features_ - 1) / 2);
  for (size_t i = 0; i < num_features_; ++i) {
    for (size_t j = i + 1; j < num_features_; ++j) {
      pairs.push_back(RankedPair{i, j, PairWeight(i, j)});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const RankedPair& a, const RankedPair& b) {
                     return std::fabs(a.weight) > std::fabs(b.weight);
                   });
  if (pairs.size() > top_k) pairs.resize(top_k);
  return pairs;
}

}  // namespace telco
