// Factorization machine (paper Section 4.1.4, Eq. 3; the LIBFM
// comparator of Section 5.8):
//
//   y(x) = w0 + sum_i w_i x_i + sum_{i<j} <v_i, v_j> x_i x_j
//
// trained by SGD on the logistic loss. Besides classification, the model
// exposes PairWeight(i, j) = <v_i, v_j>, which the feature-engineering
// layer ranks to select the 20 strongest second-order features (F9).

#ifndef TELCO_ML_FM_H_
#define TELCO_ML_FM_H_

#include <vector>

#include "ml/classifier.h"

namespace telco {

struct FactorizationMachineOptions {
  /// Latent dimensionality of the v_i vectors.
  int latent_dim = 8;
  double learning_rate = 0.1;  // paper fixes 0.1
  double l2_linear = 1e-4;
  double l2_latent = 1e-4;
  int epochs = 30;
  /// Stddev of the latent initialisation.
  double init_scale = 0.01;
  uint64_t seed = 17;
  bool standardize = true;
};

/// \brief Binary factorization-machine classifier.
class FactorizationMachine final : public Classifier {
 public:
  explicit FactorizationMachine(FactorizationMachineOptions options = {});

  Status Fit(const Dataset& data) override;
  double PredictProba(std::span<const double> row) const override;
  std::string name() const override { return "FactorizationMachine"; }

  /// The learned second-order weight <v_i, v_j> (Eq. 3).
  double PairWeight(size_t i, size_t j) const;

  /// All pairs (i, j), i < j, sorted by descending |<v_i, v_j>|; the F9
  /// extractor takes the top 20 ("select 20 second-order features with
  /// the top largest weights").
  struct RankedPair {
    size_t i;
    size_t j;
    double weight;
  };
  std::vector<RankedPair> RankPairWeights(size_t top_k) const;

 private:
  double PredictMargin(std::span<const double> row,
                       std::vector<double>* x_buffer) const;

  FactorizationMachineOptions options_;
  size_t num_features_ = 0;
  double w0_ = 0.0;
  std::vector<double> w_;  // linear weights
  std::vector<double> v_;  // latent, feature-major [f * latent_dim]
  Dataset::Standardization standardization_;
  bool standardized_ = false;
};

}  // namespace telco

#endif  // TELCO_ML_FM_H_
