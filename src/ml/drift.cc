#include "ml/drift.h"

#include <algorithm>
#include <cmath>

namespace telco {

double DriftReport::MaxPsi() const {
  double max_psi = 0.0;
  for (const auto& f : features) max_psi = std::max(max_psi, f.psi);
  return max_psi;
}

double DriftReport::MeanPsi() const {
  if (features.empty()) return 0.0;
  double total = 0.0;
  for (const auto& f : features) total += f.psi;
  return total / features.size();
}

std::vector<std::string> DriftReport::DriftedFeatures(
    double threshold) const {
  std::vector<std::string> out;
  for (const auto& f : features) {
    if (f.psi > threshold) out.push_back(f.feature);
  }
  return out;
}

Result<DriftReport> ComputeDrift(const Dataset& reference,
                                 const Dataset& current, int bins) {
  if (reference.feature_names() != current.feature_names()) {
    return Status::InvalidArgument(
        "reference and current datasets have different feature layouts");
  }
  if (reference.num_rows() == 0 || current.num_rows() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  TELCO_ASSIGN_OR_RETURN(const FeatureBinner binner,
                         FeatureBinner::Fit(reference, bins));

  // The classic epsilon-smoothed PSI: empty bins get a floor so the log
  // stays finite.
  constexpr double kFloor = 1e-4;
  DriftReport report;
  report.features.reserve(reference.num_features());
  for (size_t j = 0; j < reference.num_features(); ++j) {
    const int num_bins = binner.NumBins(j);
    std::vector<double> ref_counts(num_bins, 0.0);
    std::vector<double> cur_counts(num_bins, 0.0);
    for (size_t r = 0; r < reference.num_rows(); ++r) {
      ++ref_counts[binner.BinOf(j, reference.At(r, j))];
    }
    for (size_t r = 0; r < current.num_rows(); ++r) {
      ++cur_counts[binner.BinOf(j, current.At(r, j))];
    }
    double psi = 0.0;
    for (int b = 0; b < num_bins; ++b) {
      const double p_ref = std::max(
          ref_counts[b] / static_cast<double>(reference.num_rows()), kFloor);
      const double p_cur = std::max(
          cur_counts[b] / static_cast<double>(current.num_rows()), kFloor);
      psi += (p_cur - p_ref) * std::log(p_cur / p_ref);
    }
    report.features.push_back(
        FeatureDrift{reference.feature_names()[j], psi});
  }
  std::stable_sort(report.features.begin(), report.features.end(),
                   [](const FeatureDrift& a, const FeatureDrift& b) {
                     return a.psi > b.psi;
                   });
  return report;
}

}  // namespace telco
