#include "ml/serialize.h"

#include <sstream>

#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/retry.h"
#include "common/string_util.h"
#include "storage/atomic_file.h"

namespace telco {

namespace {

constexpr char kMagic[] = "telcochurn-rf";
constexpr int kVersion = 1;

// Doubles are written as hex-float literals for byte-exact round trips.
void WriteDouble(std::ostream& out, double v) {
  out << StrFormat("%a", v);
}

Result<double> ReadDouble(std::istream& in) {
  std::string token;
  if (!(in >> token)) return Status::IoError("unexpected end of model file");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    return Status::IoError("malformed double '" + token + "'");
  }
  return v;
}

Result<int64_t> ReadInt(std::istream& in) {
  int64_t v;
  if (!(in >> v)) return Status::IoError("unexpected end of model file");
  return v;
}

}  // namespace

Status WriteRandomForest(const RandomForest& forest, std::ostream& out) {
  if (forest.num_trees() == 0) {
    return Status::InvalidArgument("cannot serialise an unfitted forest");
  }
  out << kMagic << ' ' << kVersion << '\n';
  out << forest.num_classes() << ' ' << forest.num_trees() << ' '
      << forest.FeatureImportance().size() << '\n';
  for (double v : forest.FeatureImportance()) {
    WriteDouble(out, v);
    out << ' ';
  }
  out << '\n';
  std::vector<ClassificationTree::SerializedNode> nodes;
  std::vector<double> leaf_proba;
  for (const ClassificationTree& tree : forest.trees()) {
    tree.Export(&nodes, &leaf_proba);
    out << nodes.size() << ' ' << leaf_proba.size() << '\n';
    for (const auto& n : nodes) {
      out << n.feature << ' ';
      WriteDouble(out, n.threshold);
      out << ' ' << n.left << ' ' << n.right << ' ' << n.proba_offset
          << '\n';
    }
    for (double p : leaf_proba) {
      WriteDouble(out, p);
      out << ' ';
    }
    out << '\n';
  }
  if (!out) return Status::IoError("error writing model stream");
  return Status::OK();
}

Result<RandomForest> ReadRandomForest(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::IoError("not a telcochurn forest file");
  }
  if (version != kVersion) {
    return Status::IoError(
        StrFormat("unsupported model version %d", version));
  }
  TELCO_ASSIGN_OR_RETURN(const int64_t num_classes, ReadInt(in));
  TELCO_ASSIGN_OR_RETURN(const int64_t num_trees, ReadInt(in));
  TELCO_ASSIGN_OR_RETURN(const int64_t num_features, ReadInt(in));
  if (num_classes < 2 || num_trees < 1 || num_trees > 100000 ||
      num_features < 0) {
    return Status::IoError("implausible model header");
  }
  std::vector<double> importance;
  importance.reserve(num_features);
  for (int64_t j = 0; j < num_features; ++j) {
    TELCO_ASSIGN_OR_RETURN(const double v, ReadDouble(in));
    importance.push_back(v);
  }
  std::vector<ClassificationTree> trees;
  trees.reserve(num_trees);
  for (int64_t t = 0; t < num_trees; ++t) {
    TELCO_ASSIGN_OR_RETURN(const int64_t num_nodes, ReadInt(in));
    TELCO_ASSIGN_OR_RETURN(const int64_t proba_len, ReadInt(in));
    if (num_nodes < 1 || proba_len < num_classes) {
      return Status::IoError("implausible tree header");
    }
    std::vector<ClassificationTree::SerializedNode> nodes(num_nodes);
    for (auto& n : nodes) {
      TELCO_ASSIGN_OR_RETURN(const int64_t feature, ReadInt(in));
      TELCO_ASSIGN_OR_RETURN(const double threshold, ReadDouble(in));
      TELCO_ASSIGN_OR_RETURN(const int64_t left, ReadInt(in));
      TELCO_ASSIGN_OR_RETURN(const int64_t right, ReadInt(in));
      TELCO_ASSIGN_OR_RETURN(const int64_t proba_offset, ReadInt(in));
      n.feature = static_cast<int32_t>(feature);
      n.threshold = threshold;
      n.left = static_cast<int32_t>(left);
      n.right = static_cast<int32_t>(right);
      n.proba_offset = static_cast<int32_t>(proba_offset);
    }
    std::vector<double> leaf_proba;
    leaf_proba.reserve(proba_len);
    for (int64_t i = 0; i < proba_len; ++i) {
      TELCO_ASSIGN_OR_RETURN(const double p, ReadDouble(in));
      leaf_proba.push_back(p);
    }
    TELCO_ASSIGN_OR_RETURN(
        ClassificationTree tree,
        ClassificationTree::Import(nodes, std::move(leaf_proba),
                                   static_cast<int>(num_classes)));
    trees.push_back(std::move(tree));
  }
  return RandomForest::FromParts(RandomForestOptions{},
                                 static_cast<int>(num_classes),
                                 std::move(trees), std::move(importance));
}

Status SaveRandomForest(const RandomForest& forest,
                        const std::string& path) {
  std::ostringstream body;
  TELCO_RETURN_NOT_OK(WriteRandomForest(forest, body));
  // The trailer checksums every byte above it; a truncated, bit-flipped
  // or trailer-less file is rejected by LoadRandomForest.
  std::string content = body.str();
  content += "crc32 " + Crc32Hex(Crc32(content)) + '\n';
  TELCO_RETURN_NOT_OK(MaybeInjectFault("model.save"));
  return WriteFileAtomic(path, content);
}

Result<RandomForest> LoadRandomForest(const std::string& path) {
  return RetryWithBackoff(RetryOptions{}, [&]() -> Result<RandomForest> {
    TELCO_RETURN_NOT_OK(MaybeInjectFault("model.load"));
    TELCO_ASSIGN_OR_RETURN(const std::string content,
                           ReadFileToString(path));
    if (content.empty() || content.back() != '\n') {
      return Status::IoError("model file '" + path +
                             "' is truncated (no final newline)");
    }
    size_t trailer_start =
        content.size() >= 2 ? content.rfind('\n', content.size() - 2)
                            : std::string::npos;
    trailer_start = trailer_start == std::string::npos ? 0 : trailer_start + 1;
    const std::string trailer =
        content.substr(trailer_start, content.size() - trailer_start - 1);
    if (!StartsWith(trailer, "crc32 ")) {
      return Status::IoError("model file '" + path +
                             "' has no checksum trailer (truncated file?)");
    }
    uint32_t expected = 0;
    if (!ParseCrc32Hex(trailer.substr(6), &expected)) {
      return Status::IoError("model file '" + path +
                             "' has a malformed checksum trailer");
    }
    const std::string model_body = content.substr(0, trailer_start);
    if (Crc32(model_body) != expected) {
      return Status::IoError("checksum mismatch in model file '" + path +
                             "' (corrupt or torn file)");
    }
    std::istringstream in(model_body);
    return ReadRandomForest(in);
  });
}

Result<uint32_t> ForestChecksum(const RandomForest& forest) {
  std::ostringstream body;
  TELCO_RETURN_NOT_OK(WriteRandomForest(forest, body));
  return Crc32(body.str());
}

}  // namespace telco
