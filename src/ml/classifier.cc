#include "ml/classifier.h"

#include "common/thread_pool.h"

namespace telco {

std::vector<double> Classifier::PredictProbaBatch(const Dataset& data,
                                                  ThreadPool* pool) const {
  std::vector<double> out(data.num_rows(), 0.0);
  RunParallelFor(pool, 0, data.num_rows(),
                 [&](size_t i) { out[i] = PredictProba(data.Row(i)); });
  return out;
}

std::vector<ScoredInstance> ScoreDataset(const Classifier& model,
                                         const Dataset& data) {
  std::vector<ScoredInstance> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(
        ScoredInstance{model.PredictProba(data.Row(i)), data.label(i) == 1});
  }
  return out;
}

}  // namespace telco
