#include "ml/classifier.h"

#include "common/thread_pool.h"

namespace telco {

std::vector<double> Classifier::PredictProbaBatch(FeatureMatrix rows,
                                                  ThreadPool* pool) const {
  std::vector<double> out(rows.num_rows(), 0.0);
  RunParallelFor(pool, 0, rows.num_rows(),
                 [&](size_t i) { out[i] = PredictProba(rows.Row(i)); });
  return out;
}

std::vector<ScoredInstance> ScoreDataset(const Classifier& model,
                                         const Dataset& data,
                                         ThreadPool* pool) {
  const std::vector<double> scores =
      model.PredictProbaBatch(data.Matrix(), pool);
  std::vector<ScoredInstance> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(ScoredInstance{scores[i], data.label(i) == 1});
  }
  return out;
}

}  // namespace telco
