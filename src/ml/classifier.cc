#include "ml/classifier.h"

namespace telco {

std::vector<ScoredInstance> ScoreDataset(const Classifier& model,
                                         const Dataset& data) {
  std::vector<ScoredInstance> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(
        ScoredInstance{model.PredictProba(data.Row(i)), data.label(i) == 1});
  }
  return out;
}

}  // namespace telco
