// Gradient boosted decision trees on the logistic loss (the paper's GBDT
// comparator, Section 5.8: 500 trees, learning rate 0.1). Each round fits
// a Newton regression tree to the loss gradients/hessians and shrinks its
// contribution by the learning rate.

#ifndef TELCO_ML_GBDT_H_
#define TELCO_ML_GBDT_H_

#include <vector>

#include "ml/binned_forest.h"
#include "ml/classifier.h"
#include "ml/decision_tree.h"
#include "ml/flat_forest.h"

namespace telco {

/// GBDT hyper-parameters (paper defaults in comments).
struct GbdtOptions {
  int num_trees = 500;       // paper fixes 500
  double learning_rate = 0.1;  // paper fixes 0.1
  int max_depth = 6;
  size_t min_samples_split = 100;
  size_t min_samples_leaf = 1;
  /// L2 regularisation on leaf values.
  double lambda = 1.0;
  /// Row subsampling per round (stochastic gradient boosting).
  double subsample = 1.0;
  uint64_t seed = 11;
};

/// \brief Binary GBDT classifier.
class Gbdt final : public Classifier {
 public:
  explicit Gbdt(GbdtOptions options = {});

  Status Fit(const Dataset& data) override;
  double PredictProba(std::span<const double> row) const override;
  /// Batch scoring through a compiled engine — binned integer compares
  /// when DefaultForestEngine() selects it (the default) and the model
  /// binned, else the exact flat engine; both bit-identical to the
  /// per-row pointer walk, much faster.
  std::vector<double> PredictProbaBatch(FeatureMatrix rows,
                                        ThreadPool* pool) const override;
  using Classifier::PredictProbaBatch;
  std::string name() const override { return "GBDT"; }

  size_t num_trees() const { return trees_.size(); }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double base_margin() const { return base_margin_; }
  /// The exact compiled engine (null only before a successful fit).
  const FlatForest* flat() const { return flat_.get(); }
  /// The binned integer-compare engine (null before a fit, or when the
  /// model cannot be binned — scoring then stays on the exact engine).
  const BinnedForest* binned() const { return binned_.get(); }

 private:
  double PredictMargin(std::span<const double> row) const;

  GbdtOptions options_;
  double base_margin_ = 0.0;
  std::vector<RegressionTree> trees_;
  // Shared so copies of a fitted model reuse one compiled arena.
  std::shared_ptr<const FlatForest> flat_;
  std::shared_ptr<const BinnedForest> binned_;
};

}  // namespace telco

#endif  // TELCO_ML_GBDT_H_
