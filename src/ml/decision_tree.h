// CART decision trees with histogram split search.
//
// ClassificationTree implements the paper's Section 4.2 tree: at each
// node it draws a random subspace of sqrt(N) features, scans all split
// points per feature and takes the split maximising the Gini improvement
// I = G(parent) - q G(left) - (1-q) G(right) (Eqs. 5-6); splitting stops
// when a node holds fewer than min_samples_split instances (the paper
// fixes 100 "to avoid over-fitting").
//
// RegressionTree is the GBDT base learner: second-order (Newton) split
// gain on per-instance gradients/hessians with leaf values
// -sum(g)/(sum(h) + lambda).
//
// Both operate on a BinnedDataset (quantile codes) for O(bins) split
// scans, while prediction uses raw double rows against stored thresholds.

#ifndef TELCO_ML_DECISION_TREE_H_
#define TELCO_ML_DECISION_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ml/binning.h"
#include "ml/dataset.h"

namespace telco {

/// Knobs shared by both tree kinds.
struct TreeOptions {
  /// Depth cap (root = depth 0).
  int max_depth = 32;
  /// A node with fewer instances than this becomes a leaf (paper: 100).
  size_t min_samples_split = 100;
  /// Each child must keep at least this many instances.
  size_t min_samples_leaf = 1;
  /// Features sampled per node; 0 = all (the forest passes sqrt(N)).
  size_t max_features = 0;
  /// Minimum Gini/gain improvement to accept a split.
  double min_improvement = 1e-12;
};

/// \brief A fitted classification tree (leaf = class distribution).
class ClassificationTree {
 public:
  /// Fits on the rows listed in `indices` (bootstrap duplicates allowed).
  ///
  /// `importance`, when non-null, accumulates per-feature Gini importance:
  /// each accepted split adds its improvement weighted by the node's
  /// weight fraction (Eq. 7 with the standard node-weighting).
  Status Fit(const BinnedDataset& binned, const Dataset& data,
             const std::vector<size_t>& indices, int num_classes,
             const TreeOptions& options, Rng* rng,
             std::vector<double>* importance);

  /// Class distribution at the leaf reached by `row`.
  std::span<const double> PredictProba(std::span<const double> row) const;

  size_t num_nodes() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

  /// Flat node mirror used by model serialization (ml/serialize).
  struct SerializedNode {
    int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    int32_t proba_offset = -1;
  };

  /// Dumps the fitted tree into flat arrays.
  void Export(std::vector<SerializedNode>* nodes,
              std::vector<double>* leaf_proba) const;

  /// Reconstructs a tree from flat arrays; validates topology.
  static Result<ClassificationTree> Import(
      const std::vector<SerializedNode>& nodes,
      std::vector<double> leaf_proba, int num_classes);

 private:
  struct Node {
    int32_t feature = -1;  // -1 = leaf
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    int32_t proba_offset = -1;  // leaf: offset into leaf_proba_
  };

  size_t BuildNode(const BinnedDataset& binned, const Dataset& data,
                   std::vector<size_t>& node_indices, int depth,
                   const TreeOptions& options, Rng* rng,
                   std::vector<double>* importance, double total_weight);

  std::vector<Node> nodes_;
  std::vector<double> leaf_proba_;
  int num_classes_ = 2;
};

/// \brief A fitted regression tree over gradient/hessian targets.
class RegressionTree {
 public:
  /// Fits a Newton tree: `grad` and `hess` are per-row (full dataset
  /// indexing); `indices` selects the training rows.
  Status Fit(const BinnedDataset& binned, std::span<const double> grad,
             std::span<const double> hess,
             const std::vector<size_t>& indices, const TreeOptions& options,
             double lambda, Rng* rng);

  /// Leaf value reached by `row`.
  double Predict(std::span<const double> row) const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Flat node mirror (leaf: feature == -1, `value` is the leaf value) —
  /// the input of the flat-forest compiler.
  struct SerializedNode {
    int32_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;
  };

  /// Dumps the fitted tree into flat arrays.
  void Export(std::vector<SerializedNode>* nodes) const;

 private:
  struct Node {
    int32_t feature = -1;
    double threshold = 0.0;
    int32_t left = -1;
    int32_t right = -1;
    double value = 0.0;
  };

  size_t BuildNode(const BinnedDataset& binned, std::span<const double> grad,
                   std::span<const double> hess,
                   std::vector<size_t>& node_indices, int depth,
                   const TreeOptions& options, double lambda, Rng* rng);

  std::vector<Node> nodes_;
};

}  // namespace telco

#endif  // TELCO_ML_DECISION_TREE_H_
