#include "ml/validation.h"

#include <cmath>

#include "common/rng.h"

namespace telco {

double CrossValidationResult::MeanAuc() const {
  double total = 0.0;
  for (const auto& f : folds) total += f.auc;
  return folds.empty() ? 0.0 : total / folds.size();
}

double CrossValidationResult::MeanPrAuc() const {
  double total = 0.0;
  for (const auto& f : folds) total += f.pr_auc;
  return folds.empty() ? 0.0 : total / folds.size();
}

double CrossValidationResult::AucStdDev() const {
  if (folds.size() < 2) return 0.0;
  const double mean = MeanAuc();
  double total = 0.0;
  for (const auto& f : folds) total += (f.auc - mean) * (f.auc - mean);
  return std::sqrt(total / (folds.size() - 1));
}

Result<std::vector<int>> StratifiedFolds(const Dataset& data, int num_folds,
                                         uint64_t seed) {
  if (num_folds < 2) {
    return Status::InvalidArgument("need at least 2 folds");
  }
  if (data.num_rows() < static_cast<size_t>(num_folds)) {
    return Status::InvalidArgument("fewer rows than folds");
  }
  // Shuffle within each class, then deal round-robin into folds.
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    (data.label(i) == 1 ? positives : negatives).push_back(i);
  }
  Rng rng(seed);
  rng.Shuffle(positives);
  rng.Shuffle(negatives);
  std::vector<int> fold_of(data.num_rows(), 0);
  int next = 0;
  for (size_t idx : positives) {
    fold_of[idx] = next;
    next = (next + 1) % num_folds;
  }
  for (size_t idx : negatives) {
    fold_of[idx] = next;
    next = (next + 1) % num_folds;
  }
  return fold_of;
}

Result<CrossValidationResult> CrossValidate(const Dataset& data,
                                            const ClassifierFactory& factory,
                                            int num_folds, uint64_t seed) {
  TELCO_ASSIGN_OR_RETURN(const std::vector<int> fold_of,
                         StratifiedFolds(data, num_folds, seed));
  CrossValidationResult result;
  result.folds.reserve(num_folds);
  for (int fold = 0; fold < num_folds; ++fold) {
    std::vector<size_t> train_idx;
    std::vector<size_t> test_idx;
    for (size_t i = 0; i < data.num_rows(); ++i) {
      (fold_of[i] == fold ? test_idx : train_idx).push_back(i);
    }
    const Dataset train = data.Select(train_idx);
    const Dataset test = data.Select(test_idx);
    std::unique_ptr<Classifier> model = factory();
    if (model == nullptr) {
      return Status::InvalidArgument("classifier factory returned null");
    }
    TELCO_RETURN_NOT_OK(model->Fit(train));
    const auto scored = ScoreDataset(*model, test);
    FoldResult fr;
    fr.auc = Auc(scored);
    fr.pr_auc = PrAuc(scored);
    fr.train_rows = train.num_rows();
    fr.test_rows = test.num_rows();
    result.folds.push_back(fr);
  }
  return result;
}

}  // namespace telco
