// Classifier: the common interface of the paper's comparator models
// (Section 5.8): Random Forest, GBDT, L2 logistic regression (LIBLINEAR)
// and factorization machines (LIBFM).

#ifndef TELCO_ML_CLASSIFIER_H_
#define TELCO_ML_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/dataset.h"
#include "ml/feature_matrix.h"
#include "ml/metrics.h"

namespace telco {

class ThreadPool;

/// \brief Abstract probabilistic classifier.
///
/// Binary models implement PredictProba (probability of class 1, the
/// churner likelihood ranked by the pipeline); multi-class models
/// additionally override PredictClassProba.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (labels in [0, NumClasses), instance weights
  /// honoured where the algorithm supports them).
  virtual Status Fit(const Dataset& data) = 0;

  /// Probability that `row` belongs to class 1.
  virtual double PredictProba(std::span<const double> row) const = 0;

  /// THE batch entry point: class-1 probabilities of every row of
  /// `rows`. Rows are chunked across `pool` (null = serial); each row is
  /// scored entirely by one thread, so the result is bit-identical to
  /// the serial PredictProba loop for any thread count. Overrides (the
  /// tree ensembles route through the compiled flat-forest engine) must
  /// preserve that bit-exactness.
  virtual std::vector<double> PredictProbaBatch(FeatureMatrix rows,
                                                ThreadPool* pool) const;

  /// Thin wrapper: scores the dataset's contiguous design matrix.
  std::vector<double> PredictProbaBatch(const Dataset& data,
                                        ThreadPool* pool) const {
    return PredictProbaBatch(data.Matrix(), pool);
  }

  /// Full class distribution; the default wraps the binary case.
  virtual std::vector<double> PredictClassProba(
      std::span<const double> row) const {
    const double p = PredictProba(row);
    return {1.0 - p, p};
  }

  /// Display name used by benchmark tables.
  virtual std::string name() const = 0;
};

/// \brief Scores every row of `data`, pairing the class-1 probability with
/// the true label — the input format of the Section 5.1 metrics. A thin
/// wrapper over PredictProbaBatch (null pool = serial).
std::vector<ScoredInstance> ScoreDataset(const Classifier& model,
                                         const Dataset& data,
                                         ThreadPool* pool = nullptr);

}  // namespace telco

#endif  // TELCO_ML_CLASSIFIER_H_
