#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/telemetry/trace.h"
#include "common/thread_pool.h"

namespace telco {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options) {}

Status RandomForest::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options_.num_trees < 1) {
    return Status::InvalidArgument("num_trees must be >= 1");
  }
  num_classes_ = data.NumClasses();
  TELCO_ASSIGN_OR_RETURN(const FeatureBinner binner,
                         FeatureBinner::Fit(data, 64));
  const BinnedDataset binned = EncodeBins(binner, data);

  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_split = options_.min_samples_split;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features =
      options_.max_features > 0
          ? options_.max_features
          : static_cast<size_t>(
                std::lround(std::sqrt(static_cast<double>(
                    data.num_features()))));
  const size_t bootstrap_n = std::max<size_t>(
      1, static_cast<size_t>(options_.bootstrap_fraction *
                             static_cast<double>(data.num_rows())));

  trees_.assign(options_.num_trees, ClassificationTree());
  std::vector<std::vector<double>> per_tree_importance(
      options_.num_trees,
      std::vector<double>(data.num_features(), 0.0));

  static const Counter trees_fitted =
      MetricsRegistry::Global().GetCounter("ml.rf.trees_fitted");
  static const Counter nodes_total =
      MetricsRegistry::Global().GetCounter("ml.rf.nodes");
  static const Histogram tree_fit_seconds =
      MetricsRegistry::Global().GetHistogram("ml.rf.tree_fit_seconds");
  TraceSpan fit_span(StrFormat("ml.rf.fit:%d_trees", options_.num_trees));

  Status first_error;
  std::mutex error_mutex;
  auto fit_tree = [&](size_t t) {
    TraceSpan tree_span(StrFormat("ml.rf.tree:%zu", t));
    Stopwatch tree_watch;
    Rng rng(HashCombine64(options_.seed, t));
    std::vector<size_t> sample(bootstrap_n);
    for (auto& idx : sample) {
      idx = rng.UniformInt(static_cast<uint64_t>(data.num_rows()));
    }
    const Status st =
        trees_[t].Fit(binned, data, sample, num_classes_, tree_options, &rng,
                      &per_tree_importance[t]);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.ok()) first_error = st;
      return;
    }
    tree_fit_seconds.Observe(tree_watch.ElapsedSeconds());
    trees_fitted.Add();
    nodes_total.Add(trees_[t].num_nodes());
  };

  if (options_.parallel) {
    ThreadPool* pool =
        options_.pool != nullptr ? options_.pool : &ThreadPool::Default();
    pool->ParallelFor(0, trees_.size(), fit_tree);
  } else {
    for (size_t t = 0; t < trees_.size(); ++t) fit_tree(t);
  }
  TELCO_RETURN_NOT_OK(first_error);
  TELCO_ASSIGN_OR_RETURN(FlatForest flat, FlatForest::CompileAverage(trees_));
  flat_ = std::make_shared<const FlatForest>(std::move(flat));
  binned_ = CompileBinnedOrNull(*flat_);

  // Aggregate Eq. (7) importance across trees and normalise to sum 1.
  importance_.assign(data.num_features(), 0.0);
  for (const auto& imp : per_tree_importance) {
    for (size_t j = 0; j < imp.size(); ++j) importance_[j] += imp[j];
  }
  double total = 0.0;
  for (double v : importance_) total += v;
  if (total > 0.0) {
    for (auto& v : importance_) v /= total;
  }
  return Status::OK();
}

double RandomForest::PredictProba(std::span<const double> row) const {
  TELCO_DCHECK(!trees_.empty());
  double total = 0.0;
  for (const auto& tree : trees_) {
    total += tree.PredictProba(row)[1];
  }
  return total / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::PredictProbaBatch(FeatureMatrix rows,
                                                    ThreadPool* pool) const {
  return PredictProbaBatch(rows, pool, DefaultForestEngine());
}

std::vector<double> RandomForest::PredictProbaBatch(
    FeatureMatrix rows, ThreadPool* pool, ForestEngine engine) const {
  if (binned_ != nullptr && engine == ForestEngine::kBinned) {
    return binned_->PredictProba(rows, pool);
  }
  if (flat_ == nullptr) return Classifier::PredictProbaBatch(rows, pool);
  return flat_->PredictProba(rows, pool);
}

std::vector<double> RandomForest::PredictClassProba(
    std::span<const double> row) const {
  TELCO_DCHECK(!trees_.empty());
  std::vector<double> out(num_classes_, 0.0);
  for (const auto& tree : trees_) {
    const auto proba = tree.PredictProba(row);
    for (int c = 0; c < num_classes_; ++c) out[c] += proba[c];
  }
  for (auto& v : out) v /= static_cast<double>(trees_.size());
  return out;
}

Result<RandomForest> RandomForest::FromParts(
    RandomForestOptions options, int num_classes,
    std::vector<ClassificationTree> trees, std::vector<double> importance) {
  if (trees.empty()) {
    return Status::InvalidArgument("forest must contain at least one tree");
  }
  for (const auto& tree : trees) {
    if (tree.num_classes() != num_classes) {
      return Status::InvalidArgument("tree class count mismatch");
    }
  }
  RandomForest forest(options);
  forest.num_classes_ = num_classes;
  forest.trees_ = std::move(trees);
  forest.importance_ = std::move(importance);
  TELCO_ASSIGN_OR_RETURN(FlatForest flat,
                         FlatForest::CompileAverage(forest.trees_));
  forest.flat_ = std::make_shared<const FlatForest>(std::move(flat));
  forest.binned_ = CompileBinnedOrNull(*forest.flat_);
  return forest;
}

std::vector<std::pair<size_t, double>> RandomForest::RankedImportance()
    const {
  std::vector<std::pair<size_t, double>> ranked;
  ranked.reserve(importance_.size());
  for (size_t j = 0; j < importance_.size(); ++j) {
    ranked.emplace_back(j, importance_[j]);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  return ranked;
}

}  // namespace telco
