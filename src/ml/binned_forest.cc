#include "ml/binned_forest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "common/logging.h"
#include "common/math_util.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"
#include "common/thread_pool.h"

namespace telco {

namespace {

struct BinnedForestMetrics {
  Histogram compile_seconds;
  Counter nodes;
  Counter batch_rows;
  Counter wide_code_forests;
  Counter compile_fallbacks;
};

const BinnedForestMetrics& Metrics() {
  static const BinnedForestMetrics* const m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return new BinnedForestMetrics{
        r.GetHistogram("ml.binned_forest.compile_seconds"),
        r.GetCounter("ml.binned_forest.nodes"),
        r.GetCounter("ml.binned_forest.batch_rows"),
        r.GetCounter("ml.binned_forest.wide_code_forests"),
        r.GetCounter("ml.binned_forest.compile_fallbacks"),
    };
  }();
  return *m;
}

// -1 = not initialised yet; otherwise a ForestEngine value.
std::atomic<int> g_default_engine{-1};

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TELCO_BINNED_AVX2 1

bool HasAvx2() {
  // TELCO_BINNED_SIMD=off forces the scalar conditional-move loop — a
  // debugging/benching escape hatch; scores are identical either way.
  static const bool has = [] {
    const char* env = std::getenv("TELCO_BINNED_SIMD");
    if (env != nullptr && std::string_view(env) == "off") return false;
    return __builtin_cpu_supports("avx2") != 0;
  }();
  return has;
}

// One lock-step descent iteration for eight rows. `arena_words` views the
// 8-byte node arena as 32-bit words: word 2i is {split | feature << 16}
// (little-endian field order of BinnedForest::Node), word 2i+1 is
// right_delta. `rowoff` holds the eight rows' code-buffer base offsets
// (row * num_features). The code gather reads 4 bytes per lane, so the
// caller pads the code buffer past its last element. Returns nonzero when
// any of the eight rows moved (leaves step by 0).
__attribute__((target("avx2"))) inline uint32_t DescendStep8U16(
    const int32_t* arena_words, const uint16_t* codes,
    const int32_t* rowoff, uint32_t* idx) {
  const __m256i vidx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  const __m256i packed = _mm256_i32gather_epi32(arena_words, vidx, 8);
  const __m256i vdelta = _mm256_i32gather_epi32(arena_words + 1, vidx, 8);
  const __m256i low16 = _mm256_set1_epi32(0xFFFF);
  const __m256i vsplit = _mm256_and_si256(packed, low16);
  const __m256i vfeat = _mm256_srli_epi32(packed, 16);
  const __m256i voff = _mm256_add_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rowoff)), vfeat);
  const __m256i vcode = _mm256_and_si256(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(codes), voff, 2),
      low16);
  // code < split, both in [0, 65535] so the signed compare is exact.
  const __m256i lt = _mm256_cmpgt_epi32(vsplit, vcode);
  const __m256i step =
      _mm256_blendv_epi8(vdelta, _mm256_set1_epi32(1), lt);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx),
                      _mm256_add_epi32(vidx, step));
  return static_cast<uint32_t>(_mm256_testz_si256(step, step) == 0);
}

// uint8 code-buffer variant: gather scale 1, mask 0xFF.
__attribute__((target("avx2"))) inline uint32_t DescendStep8U8(
    const int32_t* arena_words, const uint8_t* codes, const int32_t* rowoff,
    uint32_t* idx) {
  const __m256i vidx =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
  const __m256i packed = _mm256_i32gather_epi32(arena_words, vidx, 8);
  const __m256i vdelta = _mm256_i32gather_epi32(arena_words + 1, vidx, 8);
  const __m256i vsplit = _mm256_and_si256(packed, _mm256_set1_epi32(0xFFFF));
  const __m256i vfeat = _mm256_srli_epi32(packed, 16);
  const __m256i voff = _mm256_add_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rowoff)), vfeat);
  const __m256i vcode = _mm256_and_si256(
      _mm256_i32gather_epi32(reinterpret_cast<const int*>(codes), voff, 1),
      _mm256_set1_epi32(0xFF));
  const __m256i lt = _mm256_cmpgt_epi32(vsplit, vcode);
  const __m256i step =
      _mm256_blendv_epi8(vdelta, _mm256_set1_epi32(1), lt);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx),
                      _mm256_add_epi32(vidx, step));
  return static_cast<uint32_t>(_mm256_testz_si256(step, step) == 0);
}

inline uint32_t DescendStep8(const int32_t* arena_words,
                             const uint16_t* codes, const int32_t* rowoff,
                             uint32_t* idx) {
  return DescendStep8U16(arena_words, codes, rowoff, idx);
}
inline uint32_t DescendStep8(const int32_t* arena_words,
                             const uint8_t* codes, const int32_t* rowoff,
                             uint32_t* idx) {
  return DescendStep8U8(arena_words, codes, rowoff, idx);
}
#endif  // x86_64

}  // namespace

ForestEngine DefaultForestEngine() {
  int v = g_default_engine.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(ForestEngine::kBinned);
    if (const char* env = std::getenv("TELCO_FOREST_ENGINE")) {
      const Result<ForestEngine> parsed = ParseForestEngine(env);
      if (parsed.ok()) {
        v = static_cast<int>(*parsed);
      } else {
        TELCO_LOG(Warning) << "ignoring TELCO_FOREST_ENGINE='" << env
                           << "': " << parsed.status().ToString();
      }
    }
    g_default_engine.store(v, std::memory_order_relaxed);
  }
  return static_cast<ForestEngine>(v);
}

void SetDefaultForestEngine(ForestEngine engine) {
  g_default_engine.store(static_cast<int>(engine),
                         std::memory_order_relaxed);
}

Result<ForestEngine> ParseForestEngine(std::string_view name) {
  if (name == "exact") return ForestEngine::kExact;
  if (name == "binned") return ForestEngine::kBinned;
  return Status::InvalidArgument(
      StrFormat("unknown forest engine '%.*s' (want exact|binned)",
                static_cast<int>(name.size()), name.data()));
}

std::string_view ForestEngineName(ForestEngine engine) {
  return engine == ForestEngine::kExact ? "exact" : "binned";
}

Result<BinnedForest> BinnedForest::Compile(const FlatForest& flat) {
  if (flat.nodes_.empty()) {
    return Status::InvalidArgument("cannot bin an empty forest");
  }
  Stopwatch watch;
  int64_t max_feature = -1;
  for (const FlatForest::Node& n : flat.nodes_) {
    max_feature = std::max<int64_t>(max_feature, n.feature);
  }
  if (max_feature >= 0xFFFF) {
    return Status::InvalidArgument(
        "binned nodes index features with uint16");
  }
  std::vector<std::vector<double>> thresholds(
      static_cast<size_t>(max_feature + 1));
  for (const FlatForest::Node& n : flat.nodes_) {
    if (n.feature >= 0) {
      thresholds[static_cast<size_t>(n.feature)].push_back(n.threshold);
    }
  }

  BinnedForest binned;
  TELCO_ASSIGN_OR_RETURN(binned.edges_, ThresholdEdgeMap::Build(thresholds));
  binned.wide_codes_ = !binned.edges_.fits_uint8();
  binned.roots_ = flat.roots_;
  binned.leaf_values_ = flat.leaf_values_;
  binned.margin_kind_ = flat.kind_ == FlatForest::Kind::kMargin;
  binned.base_margin_ = flat.base_margin_;
  binned.learning_rate_ = flat.learning_rate_;
  binned.nodes_.resize(flat.nodes_.size());
  binned.leaf_slot_.assign(flat.nodes_.size(), -1);
  for (size_t i = 0; i < flat.nodes_.size(); ++i) {
    const FlatForest::Node& src = flat.nodes_[i];
    Node& dst = binned.nodes_[i];
    if (src.feature < 0) {
      // Leaf: split 0 never compares true and right_delta 0 self-loops,
      // so finished rows hold still in the lock-step descent. The leaf
      // value index moves to the cold sidecar.
      binned.leaf_slot_[i] = src.right_delta;
    } else {
      dst.feature = static_cast<uint16_t>(src.feature);
      dst.right_delta = src.right_delta;
      // `v <= t` <=> `code(v) < code(t) + 1` for finite and infinite t;
      // a NaN threshold compares false for every v, which split == 0
      // encodes (no code is < 0) while the real right_delta keeps the
      // node unconditionally-right rather than a leaf self-loop.
      dst.split = std::isnan(src.threshold)
                      ? 0
                      : static_cast<uint16_t>(
                            binned.edges_.CodeOf(
                                static_cast<size_t>(src.feature),
                                src.threshold) +
                            1);
    }
  }
  Metrics().nodes.Add(binned.nodes_.size());
  if (binned.wide_codes_) Metrics().wide_code_forests.Add();
  Metrics().compile_seconds.Observe(watch.ElapsedSeconds());
  return binned;
}

template <typename Code>
void BinnedForest::ScoreBlock(FeatureMatrix rows, size_t lo, size_t hi,
                              Code* codes, double* out) const {
  const size_t cols = rows.num_cols();
  const size_t nf = edges_.num_features();
  const size_t n = hi - lo;

  // Bin the block's rows once; every tree reuses the integer codes.
  for (size_t r = 0; r < n; ++r) {
    edges_.EncodeRow(rows.data() + (lo + r) * cols, codes + r * nf);
  }

  double acc[kBlockRows];
  const double init = margin_kind_ ? base_margin_ : 0.0;
  for (size_t r = 0; r < n; ++r) acc[r] = init;

  alignas(32) uint32_t idx[kBlockRows];
#if TELCO_BINNED_AVX2
  const bool use_avx2 = HasAvx2();
  alignas(32) int32_t rowoff[kBlockRows];
  for (size_t r = 0; r < n; ++r) {
    rowoff[r] = static_cast<int32_t>(r * nf);
  }
  const int32_t* const arena_words =
      reinterpret_cast<const int32_t*>(nodes_.data());
#endif

  // Tree-major, lock-step descent: every row of the block takes one
  // conditional-move step per iteration; leaves self-loop, so the loop
  // ends after (max leaf depth among the block's rows) iterations when
  // a sweep moves nobody. Accumulation is in tree order with the exact
  // engine's arithmetic, so the result is bit-identical to it.
  const Node* const arena = nodes_.data();
  for (const uint32_t root : roots_) {
    for (size_t r = 0; r < n; ++r) idx[r] = root;
    for (;;) {
      uint32_t moved = 0;
      size_t r = 0;
#if TELCO_BINNED_AVX2
      if (use_avx2) {
        for (; r + 8 <= n; r += 8) {
          moved |= DescendStep8(arena_words, codes, rowoff + r, idx + r);
        }
      }
#endif
      for (; r < n; ++r) {
        const Node node = arena[idx[r]];
        const uint32_t code = codes[r * nf + node.feature];
        const int32_t step =
            code < node.split ? 1 : node.right_delta;
        idx[r] += static_cast<uint32_t>(step);
        moved |= static_cast<uint32_t>(step);
      }
      if (moved == 0) break;
    }
    for (size_t r = 0; r < n; ++r) {
      const double leaf = leaf_values_[static_cast<size_t>(
          leaf_slot_[idx[r]])];
      acc[r] += margin_kind_ ? learning_rate_ * leaf : leaf;
    }
  }

  if (!margin_kind_) {
    const double divisor = static_cast<double>(roots_.size());
    for (size_t r = 0; r < n; ++r) out[lo + r] = acc[r] / divisor;
  } else {
    for (size_t r = 0; r < n; ++r) out[lo + r] = Sigmoid(acc[r]);
  }
}

void BinnedForest::PredictProbaInto(FeatureMatrix rows,
                                    std::span<double> out,
                                    ThreadPool* pool) const {
  TELCO_CHECK(out.size() == rows.num_rows());
  TELCO_DCHECK(!roots_.empty());
  TELCO_DCHECK(rows.num_cols() >= edges_.num_features());
  if (rows.empty()) return;
  Metrics().batch_rows.Add(rows.num_rows());
  const size_t nf = edges_.num_features();
  // One chunk per block keeps the grid independent of the pool size;
  // rows are scored whole, so any grid gives bit-identical output.
  const size_t num_blocks = (rows.num_rows() + kBlockRows - 1) / kBlockRows;
  RunParallelChunks(
      pool, 0, rows.num_rows(), num_blocks,
      [&](size_t, size_t lo, size_t hi) {
        // Per-chunk code buffer, padded so the AVX2 4-byte code gather
        // of the last element stays in bounds.
        if (wide_codes_) {
          std::vector<uint16_t> codes(kBlockRows * nf + 2);
          for (size_t b = lo; b < hi; b += kBlockRows) {
            ScoreBlock(rows, b, std::min(b + kBlockRows, hi), codes.data(),
                       out.data());
          }
        } else {
          std::vector<uint8_t> codes(kBlockRows * nf + 4);
          for (size_t b = lo; b < hi; b += kBlockRows) {
            ScoreBlock(rows, b, std::min(b + kBlockRows, hi), codes.data(),
                       out.data());
          }
        }
      });
}

std::vector<double> BinnedForest::PredictProba(FeatureMatrix rows,
                                               ThreadPool* pool) const {
  std::vector<double> out(rows.num_rows(), 0.0);
  PredictProbaInto(rows, out, pool);
  return out;
}

std::shared_ptr<const BinnedForest> CompileBinnedOrNull(
    const FlatForest& flat) {
  Result<BinnedForest> binned = BinnedForest::Compile(flat);
  if (!binned.ok()) {
    Metrics().compile_fallbacks.Add();
    TELCO_LOG(Warning) << "binned engine unavailable, serving exact: "
                       << binned.status().ToString();
    return nullptr;
  }
  return std::make_shared<const BinnedForest>(std::move(*binned));
}

}  // namespace telco
