// L2-regularised logistic regression (the paper's LIBLINEAR comparator).
//
// Trained by averaged stochastic gradient descent on the standardised
// design matrix with the paper's learning rate 0.1. For the Section 5.8
// comparison the caller feeds discrete binary features produced by
// QuantileOneHotEncoder, matching the paper's preprocessing ("linear
// models are more suitable for sparse binary features").

#ifndef TELCO_ML_LINEAR_H_
#define TELCO_ML_LINEAR_H_

#include <vector>

#include "ml/classifier.h"

namespace telco {

struct LogisticRegressionOptions {
  double learning_rate = 0.1;  // paper fixes 0.1
  double l2 = 1e-4;
  int epochs = 30;
  uint64_t seed = 13;
  /// Standardise features before optimisation (recommended for raw
  /// continuous features; harmless for one-hot inputs).
  bool standardize = true;
};

/// \brief Binary logistic-regression classifier.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions options = {});

  Status Fit(const Dataset& data) override;
  double PredictProba(std::span<const double> row) const override;
  std::string name() const override { return "LogisticRegression"; }

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  Dataset::Standardization standardization_;
  bool standardized_ = false;
};

}  // namespace telco

#endif  // TELCO_ML_LINEAR_H_
