#include "ml/linear.h"

#include <cmath>

#include "common/math_util.h"
#include "common/rng.h"

namespace telco {

LogisticRegression::LogisticRegression(LogisticRegressionOptions options)
    : options_(options) {}

Status LogisticRegression::Fit(const Dataset& data) {
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument("LogisticRegression is binary-only");
  }
  const size_t n = data.num_rows();
  const size_t f = data.num_features();
  standardized_ = options_.standardize;
  if (standardized_) {
    standardization_ = data.ComputeStandardization();
  }
  weights_.assign(f, 0.0);
  bias_ = 0.0;

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::vector<double> x(f);

  size_t step = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const auto raw = data.Row(idx);
      if (standardized_) {
        for (size_t j = 0; j < f; ++j) {
          x[j] = (raw[j] - standardization_.mean[j]) /
                 standardization_.stddev[j];
        }
      } else {
        for (size_t j = 0; j < f; ++j) x[j] = raw[j];
      }
      double margin = bias_;
      for (size_t j = 0; j < f; ++j) margin += weights_[j] * x[j];
      const double p = Sigmoid(margin);
      const double y = data.label(idx) == 1 ? 1.0 : 0.0;
      // 1/sqrt(t) decay keeps the paper's base rate while converging.
      const double lr = options_.learning_rate /
                        std::sqrt(1.0 + static_cast<double>(step) / n);
      const double g = data.weight(idx) * (p - y);
      for (size_t j = 0; j < f; ++j) {
        weights_[j] -= lr * (g * x[j] + options_.l2 * weights_[j]);
      }
      bias_ -= lr * g;
      ++step;
    }
  }
  return Status::OK();
}

double LogisticRegression::PredictProba(std::span<const double> row) const {
  double margin = bias_;
  for (size_t j = 0; j < weights_.size() && j < row.size(); ++j) {
    const double x = standardized_
                         ? (row[j] - standardization_.mean[j]) /
                               standardization_.stddev[j]
                         : row[j];
    margin += weights_[j] * x;
  }
  return Sigmoid(margin);
}

}  // namespace telco
