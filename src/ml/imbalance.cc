#include "ml/imbalance.h"

#include "common/rng.h"

namespace telco {

const char* ImbalanceStrategyToString(ImbalanceStrategy strategy) {
  switch (strategy) {
    case ImbalanceStrategy::kNone:
      return "Not Balanced";
    case ImbalanceStrategy::kUpSampling:
      return "Up Sampling";
    case ImbalanceStrategy::kDownSampling:
      return "Down Sampling";
    case ImbalanceStrategy::kWeightedInstance:
      return "Weighted Instance";
  }
  return "Unknown";
}

Result<Dataset> ApplyImbalanceStrategy(const Dataset& data,
                                       ImbalanceStrategy strategy,
                                       uint64_t seed) {
  if (data.NumClasses() > 2) {
    return Status::InvalidArgument(
        "imbalance strategies are defined for binary labels");
  }
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    (data.label(i) == 1 ? positives : negatives).push_back(i);
  }
  if (positives.empty() || negatives.empty()) {
    return Status::InvalidArgument(
        "both classes must be present to rebalance");
  }
  Rng rng(seed);

  switch (strategy) {
    case ImbalanceStrategy::kNone: {
      std::vector<size_t> all(data.num_rows());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      return data.Select(all);
    }
    case ImbalanceStrategy::kUpSampling: {
      // "Randomly copies the churner instances to the same number of
      // non-churner instances."
      std::vector<size_t> all;
      all.reserve(negatives.size() * 2);
      all.insert(all.end(), negatives.begin(), negatives.end());
      all.insert(all.end(), positives.begin(), positives.end());
      for (size_t i = positives.size(); i < negatives.size(); ++i) {
        all.push_back(positives[rng.UniformInt(positives.size())]);
      }
      return data.Select(all);
    }
    case ImbalanceStrategy::kDownSampling: {
      // "Randomly samples a subset of non-churner instances to the same
      // number of churner instances."
      rng.Shuffle(negatives);
      negatives.resize(std::min(negatives.size(), positives.size()));
      std::vector<size_t> all;
      all.reserve(positives.size() + negatives.size());
      all.insert(all.end(), positives.begin(), positives.end());
      all.insert(all.end(), negatives.begin(), negatives.end());
      return data.Select(all);
    }
    case ImbalanceStrategy::kWeightedInstance: {
      // "Assigns a proportion weight to each instance": class weights
      // n_total / (2 * n_class), so both classes carry equal total mass.
      std::vector<size_t> all(data.num_rows());
      for (size_t i = 0; i < all.size(); ++i) all[i] = i;
      Dataset out = data.Select(all);
      const double total = static_cast<double>(data.num_rows());
      const double w_pos = total / (2.0 * static_cast<double>(positives.size()));
      const double w_neg = total / (2.0 * static_cast<double>(negatives.size()));
      for (size_t i = 0; i < out.num_rows(); ++i) {
        out.set_weight(i, out.label(i) == 1 ? w_pos : w_neg);
      }
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace telco
