// Dataset: the dense design matrix consumed by every classifier.
//
// The feature-engineering layer materialises the paper's "unified wide
// table" (one tuple per customer) and converts it to a Dataset: row-major
// doubles, integer class labels and per-instance weights (the paper's
// preferred imbalance treatment, Section 5.7).

#ifndef TELCO_ML_DATASET_H_
#define TELCO_ML_DATASET_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "ml/feature_matrix.h"
#include "storage/table.h"

namespace telco {

/// \brief Dense labelled dataset with instance weights.
class Dataset {
 public:
  /// Creates an empty dataset with the given feature names.
  explicit Dataset(std::vector<std::string> feature_names);

  /// Builds a dataset from a wide table: `feature_columns` become the
  /// design matrix (numeric columns only; nulls become 0), `label_column`
  /// the integer class labels. Weights default to 1.
  static Result<Dataset> FromTable(
      const Table& table, const std::vector<std::string>& feature_columns,
      const std::string& label_column);

  /// Builds an unlabelled dataset (labels all 0) for prediction.
  static Result<Dataset> FromTableUnlabeled(
      const Table& table, const std::vector<std::string>& feature_columns);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }

  /// Appends a row. `features` must have num_features() entries.
  void AddRow(std::span<const double> features, int label,
              double weight = 1.0);

  /// Feature vector of row i.
  std::span<const double> Row(size_t i) const {
    return std::span<const double>(data_.data() + i * num_features(),
                                   num_features());
  }

  /// Non-owning view of the whole design matrix (the batch-scoring
  /// input; valid until the next AddRow/Append or destruction).
  FeatureMatrix Matrix() const {
    return FeatureMatrix(data_.data(), num_rows(), num_features());
  }

  int label(size_t i) const { return labels_[i]; }
  double weight(size_t i) const { return weights_[i]; }
  void set_weight(size_t i, double w) { weights_[i] = w; }
  void set_label(size_t i, int label) { labels_[i] = label; }

  const std::vector<int>& labels() const { return labels_; }
  const std::vector<double>& weights() const { return weights_; }

  /// One cell.
  double At(size_t row, size_t feature) const {
    return data_[row * num_features() + feature];
  }

  /// Highest label + 1 (2 for binary churn, C for retention offers).
  int NumClasses() const;

  /// Total instance weight.
  double TotalWeight() const;

  /// A new dataset with the rows at `indices` (duplicates allowed).
  Dataset Select(const std::vector<size_t>& indices) const;

  /// Concatenates another dataset with the same feature layout.
  Status Append(const Dataset& other);

  /// Per-feature mean/stddev used to standardise linear models.
  struct Standardization {
    std::vector<double> mean;
    std::vector<double> stddev;  // >= epsilon
  };
  Standardization ComputeStandardization() const;

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> data_;  // row-major num_rows x num_features
  std::vector<int> labels_;
  std::vector<double> weights_;
};

/// \brief Deterministic train/test split by shuffled row indices.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit SplitTrainTest(const Dataset& data, double test_fraction,
                              uint64_t seed);

}  // namespace telco

#endif  // TELCO_ML_DATASET_H_
