// FlatForest: a contiguous structure-of-arrays inference engine compiled
// from a fitted tree ensemble.
//
// The pointer-walk prediction path (ClassificationTree::PredictProba /
// RegressionTree::Predict) chases 40-byte nodes scattered across one
// heap allocation per tree; at serving scale (~2.1M customers scored per
// month, paper §5) that cache-miss chain is the dominant cost. The
// compiler re-lays every tree into one arena of 16-byte nodes
// {threshold, feature, right_delta} in DFS preorder — the left child is
// always the next node, the right child sits at `right_delta` nodes
// ahead, and a leaf (feature == -1) stores the index of its contribution
// in a separate value table. Traversal is block-at-a-time: each thread
// scores up to kBlockRows rows against all trees tree-major, so the
// arena stays cache-resident while a block's rows reuse it.
//
// Scores are bit-identical to the pointer walk for any batch size and
// thread count: the compiler copies thresholds and leaf contributions
// verbatim, traversal applies the same `row[feature] <= threshold`
// double comparison (NaN features fall right in both paths), and each
// row accumulates its per-tree contributions in tree order with exactly
// the arithmetic of the pointer path (RF: sum then divide by tree count;
// GBDT: base margin plus learning-rate-scaled leaf values, then the
// shared Sigmoid). See DESIGN.md §10.

#ifndef TELCO_ML_FLAT_FOREST_H_
#define TELCO_ML_FLAT_FOREST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/decision_tree.h"
#include "ml/feature_matrix.h"

namespace telco {

class ThreadPool;

/// \brief Immutable compiled ensemble scorer (class-1 probabilities).
class FlatForest {
 public:
  /// Rows scored per block; one block is walked tree-major by one thread.
  static constexpr size_t kBlockRows = 64;

  /// Compiles a random forest's trees: a leaf contributes its class-1
  /// probability and the row score is the tree average (RandomForest's
  /// PredictProba arithmetic, Eq. 4).
  static Result<FlatForest> CompileAverage(
      const std::vector<ClassificationTree>& trees);

  /// Compiles a GBDT's regression trees: a leaf contributes its value
  /// scaled by `learning_rate` and the row score is
  /// Sigmoid(base_margin + sum of contributions) (Gbdt's PredictProba
  /// arithmetic).
  static Result<FlatForest> CompileMargin(
      const std::vector<RegressionTree>& trees, double base_margin,
      double learning_rate);

  /// Class-1 probability of every row, chunked across `pool` (null =
  /// serial). Each row is scored entirely by one thread, so the result
  /// is bit-identical for any thread count.
  std::vector<double> PredictProba(FeatureMatrix rows,
                                   ThreadPool* pool) const;

  /// Same, writing into `out` (out.size() == rows.num_rows()).
  void PredictProbaInto(FeatureMatrix rows, std::span<double> out,
                        ThreadPool* pool) const;

  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  // The binned engine (ml/binned_forest.h) compiles straight from the
  // flat arena so both engines share one node numbering and leaf table.
  friend class BinnedForest;

  enum class Kind {
    kAverage,  // score = sum(leaf values) / num_trees
    kMargin,   // score = Sigmoid(base + sum(rate * leaf values))
  };

  // 16 bytes; four nodes per cache line vs one-and-a-half pointer nodes.
  struct Node {
    double threshold = 0.0;
    int32_t feature = -1;   // -1 = leaf: right_delta indexes leaf_values_
    int32_t right_delta = 0;  // right child at (this + right_delta)
  };

  FlatForest() = default;

  // Appends one tree in DFS preorder; `src` is Export output, `values`
  // maps a source leaf to its contribution.
  template <typename SrcNode, typename LeafValueFn>
  Status FlattenTree(const std::vector<SrcNode>& src,
                     const LeafValueFn& leaf_value);

  void ScoreBlock(FeatureMatrix rows, size_t lo, size_t hi,
                  double* out) const;

  std::vector<Node> nodes_;       // all trees, DFS order, back to back
  std::vector<uint32_t> roots_;   // index of each tree's root in nodes_
  std::vector<double> leaf_values_;
  Kind kind_ = Kind::kAverage;
  double base_margin_ = 0.0;
  double learning_rate_ = 1.0;
};

}  // namespace telco

#endif  // TELCO_ML_FLAT_FOREST_H_
