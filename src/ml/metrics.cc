#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace telco {

namespace {

// Instances sorted by descending score (the paper ranks churn likelihood
// in descending order for both evaluation and campaigns).
std::vector<ScoredInstance> SortedDescending(
    std::vector<ScoredInstance> instances) {
  std::stable_sort(instances.begin(), instances.end(),
                   [](const ScoredInstance& a, const ScoredInstance& b) {
                     return a.score > b.score;
                   });
  return instances;
}

size_t CountPositives(const std::vector<ScoredInstance>& instances) {
  size_t p = 0;
  for (const auto& it : instances) p += it.positive;
  return p;
}

}  // namespace

double Auc(const std::vector<ScoredInstance>& instances) {
  const size_t p = CountPositives(instances);
  const size_t n = instances.size() - p;
  if (p == 0 || n == 0) return 0.5;

  // Ascending by score so rank 1 = lowest score, as Eq. (10) requires
  // after its descending-rank reindexing (highest likelihood = rank N).
  std::vector<ScoredInstance> sorted(instances);
  std::sort(sorted.begin(), sorted.end(),
            [](const ScoredInstance& a, const ScoredInstance& b) {
              return a.score < b.score;
            });
  // Average ranks over score ties, then sum positive ranks.
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) ++j;
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (sorted[k].positive) positive_rank_sum += avg_rank;
    }
    i = j;
  }
  const double pd = static_cast<double>(p);
  const double nd = static_cast<double>(n);
  return (positive_rank_sum - pd * (pd + 1.0) / 2.0) / (pd * nd);
}

double PrAuc(const std::vector<ScoredInstance>& instances) {
  const size_t p = CountPositives(instances);
  if (instances.empty()) return 0.0;
  if (p == 0) return 0.0;
  const auto sorted = SortedDescending(instances);

  // Sweep the ranking; emit one (recall, precision) point per score group
  // and integrate with the trapezoidal rule.
  double area = 0.0;
  double prev_recall = 0.0;
  double prev_precision = 1.0;
  size_t tp = 0;
  size_t seen = 0;
  size_t i = 0;
  const double pd = static_cast<double>(p);
  while (i < sorted.size()) {
    size_t j = i;
    size_t group_tp = 0;
    while (j < sorted.size() && sorted[j].score == sorted[i].score) {
      group_tp += sorted[j].positive;
      ++j;
    }
    tp += group_tp;
    seen = j;
    const double recall = static_cast<double>(tp) / pd;
    const double precision =
        static_cast<double>(tp) / static_cast<double>(seen);
    area += (recall - prev_recall) * (precision + prev_precision) / 2.0;
    prev_recall = recall;
    prev_precision = precision;
    i = j;
  }
  return area;
}

double RecallAtU(const std::vector<ScoredInstance>& instances, size_t u) {
  const size_t p = CountPositives(instances);
  if (p == 0) return 0.0;
  const auto sorted = SortedDescending(instances);
  const size_t limit = std::min(u, sorted.size());
  size_t tp = 0;
  for (size_t i = 0; i < limit; ++i) tp += sorted[i].positive;
  return static_cast<double>(tp) / static_cast<double>(p);
}

double PrecisionAtU(const std::vector<ScoredInstance>& instances, size_t u,
                    bool cap_at_list_size) {
  if (u == 0) return 0.0;
  const auto sorted = SortedDescending(instances);
  const size_t limit = std::min(u, sorted.size());
  if (limit == 0) return 0.0;
  size_t tp = 0;
  for (size_t i = 0; i < limit; ++i) tp += sorted[i].positive;
  // Per Eq. (9) the denominator is U itself, even when fewer than U
  // instances were ranked; the attainable-denominator fallback is opt-in.
  const size_t denom = cap_at_list_size ? limit : u;
  return static_cast<double>(tp) / static_cast<double>(denom);
}

double LiftAtU(const std::vector<ScoredInstance>& instances, size_t u) {
  if (instances.empty()) return 0.0;
  const double base = static_cast<double>(CountPositives(instances)) /
                      static_cast<double>(instances.size());
  if (base <= 0.0) return 0.0;
  return PrecisionAtU(instances, u) / base;
}

std::string RankingMetrics::ToString() const {
  return StrFormat("AUC=%.5f PR-AUC=%.5f R@%zu=%.5f P@%zu=%.5f", auc, pr_auc,
                   u, recall_at_u, u, precision_at_u);
}

RankingMetrics EvaluateRanking(const std::vector<ScoredInstance>& instances,
                               size_t u) {
  RankingMetrics m;
  m.u = u;
  m.auc = Auc(instances);
  m.pr_auc = PrAuc(instances);
  m.recall_at_u = RecallAtU(instances, u);
  m.precision_at_u = PrecisionAtU(instances, u);
  return m;
}

double ConfusionMatrix::Precision() const {
  const size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  const size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::Accuracy() const {
  const size_t total = true_positives + false_positives + true_negatives +
                       false_negatives;
  return total == 0 ? 0.0
                    : static_cast<double>(true_positives + true_negatives) /
                          static_cast<double>(total);
}

ConfusionMatrix ComputeConfusion(const std::vector<ScoredInstance>& instances,
                                 double threshold) {
  ConfusionMatrix cm;
  for (const auto& it : instances) {
    const bool predicted = it.score >= threshold;
    if (predicted && it.positive) {
      ++cm.true_positives;
    } else if (predicted && !it.positive) {
      ++cm.false_positives;
    } else if (!predicted && it.positive) {
      ++cm.false_negatives;
    } else {
      ++cm.true_negatives;
    }
  }
  return cm;
}

double LogLoss(const std::vector<ScoredInstance>& instances) {
  if (instances.empty()) return 0.0;
  double total = 0.0;
  for (const auto& it : instances) {
    const double p = std::clamp(it.score, 1e-12, 1.0 - 1e-12);
    total += it.positive ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(instances.size());
}

}  // namespace telco
