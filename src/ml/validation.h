// K-fold cross-validation utilities.
//
// The paper evaluates with a time-ordered sliding window (no random CV),
// but model development inside one labelled month still needs unbiased
// hyper-parameter estimates; this is the standard tool for that.

#ifndef TELCO_ML_VALIDATION_H_
#define TELCO_ML_VALIDATION_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "ml/classifier.h"

namespace telco {

/// Per-fold evaluation outcome.
struct FoldResult {
  double auc = 0.0;
  double pr_auc = 0.0;
  size_t train_rows = 0;
  size_t test_rows = 0;
};

/// Aggregate cross-validation outcome.
struct CrossValidationResult {
  std::vector<FoldResult> folds;

  double MeanAuc() const;
  double MeanPrAuc() const;
  /// Sample standard deviation of the fold AUCs.
  double AucStdDev() const;
};

/// Builds a fresh untrained classifier for each fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// \brief Runs stratified k-fold cross-validation of a binary classifier.
///
/// Rows are split into k folds with the positive rate preserved per fold
/// (stratification matters at telco churn's ~9% prevalence); each fold is
/// scored by the model trained on the remaining k-1 folds.
Result<CrossValidationResult> CrossValidate(const Dataset& data,
                                            const ClassifierFactory& factory,
                                            int num_folds, uint64_t seed);

/// \brief Computes the stratified fold assignment (exposed for tests):
/// result[i] in [0, num_folds) for every row.
Result<std::vector<int>> StratifiedFolds(const Dataset& data, int num_folds,
                                         uint64_t seed);

}  // namespace telco

#endif  // TELCO_ML_VALIDATION_H_
