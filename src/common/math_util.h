// Numeric helpers shared by the ML and simulation layers.

#ifndef TELCO_COMMON_MATH_UTIL_H_
#define TELCO_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace telco {

/// Numerically-stable logistic function.
inline double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

/// Inverse of Sigmoid; p is clamped away from {0, 1}.
inline double Logit(double p) {
  const double q = std::clamp(p, 1e-12, 1.0 - 1e-12);
  return std::log(q / (1.0 - q));
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::clamp(x, lo, hi);
}

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& xs);

/// Standard deviation (sqrt of population variance).
double StdDev(const std::vector<double>& xs);

/// p-quantile (linear interpolation); requires non-empty input.
double Quantile(std::vector<double> xs, double p);

/// Pearson correlation; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// log(sum(exp(xs))) computed stably.
double LogSumExp(const std::vector<double>& xs);

/// In-place normalisation of a non-negative vector to sum to 1; a zero
/// vector becomes uniform.
void NormalizeInPlace(std::vector<double>& xs);

}  // namespace telco

#endif  // TELCO_COMMON_MATH_UTIL_H_
