// CRC32 (the zlib/PNG polynomial, reflected): the integrity checksum of
// every durable artifact — warehouse CSVs, model files, checkpoint
// manifests. A torn or bit-flipped file must never load as valid data.

#ifndef TELCO_COMMON_CRC32_H_
#define TELCO_COMMON_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace telco {

/// \brief CRC32 of `data`. Pass a previous result as `seed` to checksum a
/// stream incrementally: Crc32(b, Crc32(a)) == Crc32(ab).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// \brief Fixed-width lower-case hex rendering ("00000000".."ffffffff"),
/// the on-disk form used by manifests.
std::string Crc32Hex(uint32_t crc);

/// \brief Parses Crc32Hex output. Returns false on malformed input.
bool ParseCrc32Hex(std::string_view hex, uint32_t* crc);

}  // namespace telco

#endif  // TELCO_COMMON_CRC32_H_
