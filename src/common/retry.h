// Retry-with-backoff for transient I/O failures.
//
// The paper's platform reruns failed Hive/Spark stages automatically; the
// single-node analogue is retrying reads that fail with a transient
// IoError (NFS hiccup, concurrent writer mid-rename, injected fault)
// before surfacing the failure to the pipeline.

#ifndef TELCO_COMMON_RETRY_H_
#define TELCO_COMMON_RETRY_H_

#include <chrono>
#include <thread>
#include <type_traits>

#include "common/result.h"
#include "common/telemetry/metrics.h"

namespace telco {

struct RetryOptions {
  /// Total attempts, including the first (1 = no retries).
  int max_attempts = 3;
  /// Sleep before the first retry; doubles after each further failure.
  std::chrono::milliseconds initial_backoff{5};
};

/// \brief Invokes `fn` (returning Status or Result<T>) until it succeeds,
/// fails with a non-IoError status, or exhausts `options.max_attempts`.
/// Only IoError is treated as transient; other codes surface immediately.
template <typename Fn>
auto RetryWithBackoff(const RetryOptions& options, Fn&& fn)
    -> std::invoke_result_t<Fn> {
  using R = std::invoke_result_t<Fn>;
  static const Counter attempts_counter =
      MetricsRegistry::Global().GetCounter("common.retry.attempts");
  static const Counter retries_counter =
      MetricsRegistry::Global().GetCounter("common.retry.retries");
  static const Counter exhausted_counter =
      MetricsRegistry::Global().GetCounter("common.retry.exhausted");
  auto backoff = options.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    attempts_counter.Add();
    R result = fn();
    Status status;
    if constexpr (std::is_same_v<R, Status>) {
      status = result;
    } else {
      status = result.status();
    }
    if (status.ok() || !status.IsIoError() ||
        attempt >= options.max_attempts) {
      if (!status.ok() && status.IsIoError() &&
          attempt >= options.max_attempts) {
        exhausted_counter.Add();
      }
      return result;
    }
    retries_counter.Add();
    std::this_thread::sleep_for(backoff);
    backoff *= 2;
  }
}

}  // namespace telco

#endif  // TELCO_COMMON_RETRY_H_
