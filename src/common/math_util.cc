#include "common/math_util.h"

#include <cassert>

namespace telco {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - mu) * (x - mu);
  return total / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::vector<double> xs, double p) {
  assert(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const double pos = std::clamp(p, 0.0, 1.0) * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -HUGE_VAL;
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double total = 0.0;
  for (double x : xs) total += std::exp(x - m);
  return m + std::log(total);
}

void NormalizeInPlace(std::vector<double>& xs) {
  double total = 0.0;
  for (double x : xs) total += x;
  if (total <= 0.0) {
    if (!xs.empty()) {
      const double u = 1.0 / static_cast<double>(xs.size());
      for (auto& x : xs) x = u;
    }
    return;
  }
  for (auto& x : xs) x /= total;
}

}  // namespace telco
