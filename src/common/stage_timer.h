// Lightweight named stage timings: pipeline stages accumulate wall-clock
// seconds under a name, and the collected report is printed by
// `telcochurn evaluate --timings` and the bench harnesses.

#ifndef TELCO_COMMON_STAGE_TIMER_H_
#define TELCO_COMMON_STAGE_TIMER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"

namespace telco {

/// \brief Accumulates wall-clock seconds per named stage, preserving
/// first-seen order.
class StageTimings {
 public:
  /// Adds `seconds` to the named stage (created on first use).
  void Add(const std::string& name, double seconds) {
    for (auto& [n, s] : entries_) {
      if (n == name) {
        s += seconds;
        return;
      }
    }
    entries_.emplace_back(name, seconds);
  }

  /// (stage, seconds) pairs in first-seen order.
  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

  double Total() const {
    double total = 0.0;
    for (const auto& [_, s] : entries_) total += s;
    return total;
  }

  void Clear() { entries_.clear(); }

  /// One line per stage: "  <name>  <seconds> s", plus a total.
  std::string ToString() const {
    std::string out;
    for (const auto& [name, seconds] : entries_) {
      out += StrFormat("  %-14s %9.3f s\n", name.c_str(), seconds);
    }
    out += StrFormat("  %-14s %9.3f s", "total", Total());
    return out;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

/// \brief Adds the elapsed scope time to a stage on destruction.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimings* timings, std::string name)
      : timings_(timings), name_(std::move(name)) {}
  ~ScopedStageTimer() {
    if (timings_ != nullptr) timings_->Add(name_, watch_.ElapsedSeconds());
  }
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimings* timings_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace telco

#endif  // TELCO_COMMON_STAGE_TIMER_H_
