// Minimal leveled logging with fatal-check macros (Arrow's DCHECK idiom).

#ifndef TELCO_COMMON_LOGGING_H_
#define TELCO_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace telco {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide logging configuration.
class Logger {
 public:
  /// Sets the minimum level that is emitted (default kInfo).
  static void SetLevel(LogLevel level) {
    MinLevel().store(static_cast<int>(level), std::memory_order_relaxed);
  }
  static LogLevel GetLevel() {
    return static_cast<LogLevel>(MinLevel().load(std::memory_order_relaxed));
  }

  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) >=
           MinLevel().load(std::memory_order_relaxed);
  }

  /// Parses "debug" / "info" / "warning" (or "warn") / "error" into
  /// `*level`; false (leaving it untouched) on anything else.
  static bool ParseLevel(const std::string& text, LogLevel* level);

  /// Applies TELCO_LOG_LEVEL from the environment, if set and valid, on
  /// top of `fallback`. Call once at process startup (CLI / bench mains).
  static void InitFromEnv(LogLevel fallback);

  /// Writes one line "<LEVEL> <seconds-since-start> <msg>" with a single
  /// mutexed stderr write, so ThreadPool workers cannot interleave lines.
  static void Emit(LogLevel level, const std::string& msg);

 private:
  static std::atomic<int>& MinLevel() {
    static std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
    return level;
  }
};

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Basename(file) << ":" << line << "] ";
  }
  ~LogMessage() { Logger::Emit(level_, stream_.str()); }

  std::ostream& stream() { return stream_; }

 private:
  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits a message then aborts; used by TELCO_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* expr) {
    stream_ << "[" << file << ":" << line << "] Check failed: " << expr << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define TELCO_LOG(level)                                                     \
  if (::telco::Logger::Enabled(::telco::LogLevel::k##level))                 \
  ::telco::internal::LogMessage(::telco::LogLevel::k##level, __FILE__,       \
                                __LINE__)                                    \
      .stream()

/// Aborts the process with a diagnostic when `cond` is false. For invariants
/// whose violation is a programming error, not a runtime failure.
#define TELCO_CHECK(cond)                                           \
  if (!(cond))                                                      \
  ::telco::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define TELCO_CHECK_OK(expr)                                          \
  do {                                                                \
    ::telco::Status _s = (expr);                                      \
    TELCO_CHECK(_s.ok()) << _s.ToString();                            \
  } while (false)

#ifdef NDEBUG
#define TELCO_DCHECK(cond) \
  while (false) TELCO_CHECK(cond)
#else
#define TELCO_DCHECK(cond) TELCO_CHECK(cond)
#endif

}  // namespace telco

#endif  // TELCO_COMMON_LOGGING_H_
