// Wall-clock stopwatch used by benchmark harnesses.

#ifndef TELCO_COMMON_STOPWATCH_H_
#define TELCO_COMMON_STOPWATCH_H_

#include <chrono>

namespace telco {

/// \brief Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace telco

#endif  // TELCO_COMMON_STOPWATCH_H_
