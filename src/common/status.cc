#include "common/status.h"

namespace telco {

namespace {
const std::string kEmptyString;
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace telco
