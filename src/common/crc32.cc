#include "common/crc32.h"

#include <array>

#include "common/string_util.h"

namespace telco {

namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  uint32_t c = seed ^ 0xffffffffu;
  for (const char ch : data) {
    c = kTable[(c ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string Crc32Hex(uint32_t crc) { return StrFormat("%08x", crc); }

bool ParseCrc32Hex(std::string_view hex, uint32_t* crc) {
  if (hex.size() != 8 || crc == nullptr) return false;
  uint32_t v = 0;
  for (const char c : hex) {
    uint32_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  *crc = v;
  return true;
}

}  // namespace telco
