// Small string helpers shared across modules.

#ifndef TELCO_COMMON_STRING_UTIL_H_
#define TELCO_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace telco {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace telco

#endif  // TELCO_COMMON_STRING_UTIL_H_
