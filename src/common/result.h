// Result<T>: value-or-Status, the return type of fallible value-producing
// functions in telcochurn (Arrow's arrow::Result idiom).

#ifndef TELCO_COMMON_RESULT_H_
#define TELCO_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace telco {

/// \brief Holds either a successfully-computed T or the Status explaining
/// why it could not be computed.
///
/// Constructing from an OK status is a programming error and is converted
/// to an Internal error status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT
      : repr_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(repr_).ok()) {
      repr_.template emplace<1>(
          Status::Internal("Result constructed from OK status"));
    }
  }

  /// True iff a value is held.
  bool ok() const { return repr_.index() == 0; }

  /// The failure status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(repr_);
  }

  /// The held value. Precondition: ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<0>(repr_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<0>(repr_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<0>(repr_));
  }

  /// Shorthand for ValueOrDie (Arrow naming).
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` on failure.
  T ValueOr(T alternative) && {
    return ok() ? std::move(std::get<0>(repr_)) : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// failure status to the caller.
#define TELCO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define TELCO_ASSIGN_OR_RETURN(lhs, rexpr) \
  TELCO_ASSIGN_OR_RETURN_IMPL(             \
      TELCO_CONCAT_(_telco_result_, __LINE__), lhs, rexpr)

#define TELCO_CONCAT_INNER_(a, b) a##b
#define TELCO_CONCAT_(a, b) TELCO_CONCAT_INNER_(a, b)

}  // namespace telco

#endif  // TELCO_COMMON_RESULT_H_
