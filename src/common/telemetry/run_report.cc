#include "common/telemetry/run_report.h"

#include "common/string_util.h"
#include "common/telemetry/json.h"

namespace telco {

namespace {

std::string QuotedField(const std::string& key, const std::string& value) {
  return "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
}

Result<MetricValue> MetricFromJson(const JsonValue& node) {
  if (!node.is_object()) {
    return Status::InvalidArgument("metric entry is not an object");
  }
  MetricValue metric;
  metric.name = node.StringOr("name", "");
  if (metric.name.empty()) {
    return Status::InvalidArgument("metric entry missing name");
  }
  const std::string kind = node.StringOr("kind", "");
  if (kind == "counter") {
    metric.kind = MetricKind::kCounter;
    metric.counter = static_cast<uint64_t>(node.NumberOr("value", 0.0));
  } else if (kind == "gauge") {
    metric.kind = MetricKind::kGauge;
    metric.gauge = node.NumberOr("value", 0.0);
  } else if (kind == "histogram" || kind == "log_histogram") {
    metric.kind = kind == "histogram" ? MetricKind::kHistogram
                                      : MetricKind::kLogHistogram;
    HistogramSnapshot& h = metric.histogram;
    h.count = static_cast<uint64_t>(node.NumberOr("count", 0.0));
    h.sum = node.NumberOr("sum", 0.0);
    h.min = node.NumberOr("min", 0.0);
    h.max = node.NumberOr("max", 0.0);
    if (const JsonValue* bounds = node.Find("bounds");
        bounds != nullptr && bounds->is_array()) {
      for (const JsonValue& b : bounds->items) h.bounds.push_back(b.number);
    }
    if (const JsonValue* buckets = node.Find("buckets");
        buckets != nullptr && buckets->is_array()) {
      for (const JsonValue& b : buckets->items) {
        h.buckets.push_back(static_cast<uint64_t>(b.number));
      }
    }
  } else {
    return Status::InvalidArgument(
        StrFormat("metric '%s' has unknown kind '%s'", metric.name.c_str(),
                  kind.c_str()));
  }
  return metric;
}

}  // namespace

std::string RunReport::ToJson() const {
  std::string out = "{";
  out += "\"schema_version\":" + JsonNumber(schema_version);
  out += "," + QuotedField("kind", kind);
  out += "," + QuotedField("command", command);
  out += ",\"config\":{";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) out += ",";
    out += QuotedField(config[i].first, config[i].second);
  }
  out += "},\"stages\":[";
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) out += ",";
    out += "{" + QuotedField("name", stages[i].name);
    out += ",\"wall_seconds\":" + JsonNumber(stages[i].wall_seconds);
    out += ",\"cpu_seconds\":" + JsonNumber(stages[i].cpu_seconds) + "}";
  }
  out += "],\"total_wall_seconds\":" + JsonNumber(total_wall_seconds);
  if (has_quality) {
    out += ",\"quality\":{";
    out += "\"auc\":" + JsonNumber(quality.auc);
    out += ",\"pr_auc\":" + JsonNumber(quality.pr_auc);
    out += ",\"recall_at_u\":" + JsonNumber(quality.recall_at_u);
    out += ",\"precision_at_u\":" + JsonNumber(quality.precision_at_u);
    out += ",\"u\":" + JsonNumber(static_cast<double>(quality.u));
    out += "}";
  }
  out += ",\"metrics\":" + metrics.ToJson();
  out += "}";
  return out;
}

Result<RunReport> RunReport::FromJson(std::string_view text) {
  TELCO_ASSIGN_OR_RETURN(const JsonValue root, ParseJson(text));
  if (!root.is_object()) {
    return Status::InvalidArgument("run report is not a JSON object");
  }
  RunReport report;
  report.schema_version =
      static_cast<int>(root.NumberOr("schema_version", 0.0));
  if (report.schema_version != kSchemaVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported run report schema_version %d",
                  report.schema_version));
  }
  report.kind = root.StringOr("kind", "run");
  report.command = root.StringOr("command", "");
  if (const JsonValue* config = root.Find("config");
      config != nullptr && config->is_object()) {
    for (const auto& [key, value] : config->fields) {
      if (value.type == JsonValue::Type::kString) {
        report.config.emplace_back(key, value.string);
      }
    }
  }
  if (const JsonValue* stages = root.Find("stages");
      stages != nullptr && stages->is_array()) {
    for (const JsonValue& node : stages->items) {
      if (!node.is_object()) continue;
      StageEntry entry;
      entry.name = node.StringOr("name", "");
      entry.wall_seconds = node.NumberOr("wall_seconds", 0.0);
      entry.cpu_seconds = node.NumberOr("cpu_seconds", 0.0);
      report.stages.push_back(std::move(entry));
    }
  }
  report.total_wall_seconds = root.NumberOr("total_wall_seconds", 0.0);
  if (const JsonValue* quality = root.Find("quality");
      quality != nullptr && quality->is_object()) {
    report.has_quality = true;
    report.quality.auc = quality->NumberOr("auc", 0.0);
    report.quality.pr_auc = quality->NumberOr("pr_auc", 0.0);
    report.quality.recall_at_u = quality->NumberOr("recall_at_u", 0.0);
    report.quality.precision_at_u = quality->NumberOr("precision_at_u", 0.0);
    report.quality.u = static_cast<uint64_t>(quality->NumberOr("u", 0.0));
  }
  if (const JsonValue* metrics = root.Find("metrics");
      metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& node : metrics->items) {
      TELCO_ASSIGN_OR_RETURN(MetricValue metric, MetricFromJson(node));
      report.metrics.metrics.push_back(std::move(metric));
    }
  }
  return report;
}

std::string RunReport::ToPrettyString() const {
  std::string out;
  out += StrFormat("run report (schema v%d)\n", schema_version);
  out += StrFormat("  kind:    %s\n", kind.c_str());
  out += StrFormat("  command: %s\n", command.c_str());
  if (!config.empty()) {
    out += "config:\n";
    for (const auto& [key, value] : config) {
      out += StrFormat("  %-18s %s\n", key.c_str(), value.c_str());
    }
  }
  if (!stages.empty()) {
    out += "stages:\n";
    for (const StageEntry& stage : stages) {
      out += StrFormat("  %-18s %9.3f s  (cpu %9.3f s)\n", stage.name.c_str(),
                       stage.wall_seconds, stage.cpu_seconds);
    }
    out += StrFormat("  %-18s %9.3f s\n", "total", total_wall_seconds);
  }
  if (has_quality) {
    out += "quality:\n";
    out += StrFormat("  AUC      %.6f\n", quality.auc);
    out += StrFormat("  PR-AUC   %.6f\n", quality.pr_auc);
    out += StrFormat("  R@U      %.6f  (U=%llu)\n", quality.recall_at_u,
                     static_cast<unsigned long long>(quality.u));
    out += StrFormat("  P@U      %.6f\n", quality.precision_at_u);
  }
  out += StrFormat("metrics (%zu):\n", metrics.metrics.size());
  for (const MetricValue& metric : metrics.metrics) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += StrFormat("  %-44s counter    %llu\n", metric.name.c_str(),
                         static_cast<unsigned long long>(metric.counter));
        break;
      case MetricKind::kGauge:
        out += StrFormat("  %-44s gauge      %.6g\n", metric.name.c_str(),
                         metric.gauge);
        break;
      case MetricKind::kHistogram:
      case MetricKind::kLogHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out += StrFormat(
            "  %-44s %-9s  n=%llu sum=%.6g min=%.6g max=%.6g"
            " p50=%.6g p99=%.6g p999=%.6g\n",
            metric.name.c_str(),
            metric.kind == MetricKind::kHistogram ? "histogram" : "loghist",
            static_cast<unsigned long long>(h.count), h.sum, h.min, h.max,
            h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999));
        break;
      }
    }
  }
  return out;
}

}  // namespace telco
