#include "common/telemetry/trace.h"

#include <algorithm>
#include <chrono>

#include "common/telemetry/json.h"

namespace telco {

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local uint64_t tls_current_span_id = 0;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked: spans may close during static destruction of other objects.
  static TraceRecorder* const kGlobal = new TraceRecorder();
  return *kGlobal;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (ThreadBuffer* buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  epoch_ns_.store(SteadyNowNanos(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_release);
}

double TraceRecorder::NowMicros() const {
  return static_cast<double>(SteadyNowNanos() -
                             epoch_ns_.load(std::memory_order_relaxed)) /
         1000.0;
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  thread_local ThreadBuffer* tls_buffer = nullptr;
  // The recorder (and its buffers) are leaked, so a cached pointer from a
  // previous call can never dangle.
  if (tls_buffer == nullptr) {
    auto* buffer = new ThreadBuffer();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
    tls_buffer = buffer;
  }
  return tls_buffer;
}

void TraceRecorder::Append(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  event.tid = buffer->tid;
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::AppendCompleted(std::string name, uint64_t id,
                                    uint64_t parent_id, double begin_us,
                                    double end_us) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.id = id == 0 ? NextSpanId() : id;
  event.parent_id = parent_id;
  event.begin_us = begin_us;
  event.duration_us = std::max(0.0, end_us - begin_us);
  Append(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Collect() {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (ThreadBuffer* buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
      buffer->events.clear();
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_us != b.begin_us) return a.begin_us < b.begin_us;
              if (a.duration_us != b.duration_us) {
                return a.duration_us > b.duration_us;  // parents first
              }
              return a.id < b.id;
            });
  return all;
}

std::string TraceRecorder::ExportJson() {
  const std::vector<TraceEvent> events = Collect();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(event.name) + "\"";
    out += ",\"cat\":\"telco\",\"ph\":\"X\"";
    out += ",\"ts\":" + JsonNumber(event.begin_us);
    out += ",\"dur\":" + JsonNumber(event.duration_us);
    out += ",\"pid\":1,\"tid\":" + JsonNumber(static_cast<double>(event.tid));
    out += ",\"args\":{\"id\":" + JsonNumber(static_cast<double>(event.id));
    out += ",\"parent\":" + JsonNumber(static_cast<double>(event.parent_id));
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

uint64_t TraceContext::CurrentSpanId() { return tls_current_span_id; }

void TraceContext::Set(uint64_t span_id) { tls_current_span_id = span_id; }

TraceContext::Scope::Scope(uint64_t span_id) : saved_(tls_current_span_id) {
  tls_current_span_id = span_id;
}

TraceContext::Scope::~Scope() { tls_current_span_id = saved_; }

TraceSpan::TraceSpan(std::string name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  name_ = std::move(name);
  id_ = recorder.NextSpanId();
  parent_id_ = TraceContext::CurrentSpanId();
  begin_us_ = recorder.NowMicros();
  active_ = true;
  TraceContext::Set(id_);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceContext::Set(parent_id_);
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;  // stopped mid-span: drop the event
  TraceEvent event;
  event.name = std::move(name_);
  event.id = id_;
  event.parent_id = parent_id_;
  event.begin_us = begin_us_;
  event.duration_us = recorder.NowMicros() - begin_us_;
  recorder.Append(std::move(event));
}

}  // namespace telco
