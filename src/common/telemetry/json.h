// Minimal JSON reader/writer helpers for telemetry artifacts.
//
// The telemetry subsystem emits (run reports, Chrome trace events) and
// re-reads (the `telcochurn metrics` verb, the bench_smoke harness) its
// own JSON documents. This is a small purpose-built parser for that
// round-trip, not a general-purpose JSON library: it accepts standard
// JSON (objects, arrays, strings with escapes, numbers, booleans, null)
// with a fixed nesting-depth limit.

#ifndef TELCO_COMMON_TELEMETRY_JSON_H_
#define TELCO_COMMON_TELEMETRY_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace telco {

/// \brief One parsed JSON value; a tagged union over the JSON types.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  // kArray
  /// Object members in document order (duplicate keys keep the first).
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }

  /// Member lookup on an object; null for missing keys or non-objects.
  const JsonValue* Find(const std::string& key) const;

  /// The member's number (or `fallback` when absent / not a number).
  double NumberOr(const std::string& key, double fallback) const;

  /// The member's string (or `fallback` when absent / not a string).
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
};

/// \brief Parses a complete JSON document (trailing garbage is an error).
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Escapes a string for embedding between JSON double quotes.
std::string JsonEscape(std::string_view text);

/// \brief Formats a double as a JSON number token round-trippable at full
/// precision; non-finite values (which JSON cannot represent) become 0.
std::string JsonNumber(double value);

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_JSON_H_
