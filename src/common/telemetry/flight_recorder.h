// FlightRecorder: a background thread that appends interval-delta metric
// snapshots to a JSONL file, turning the cumulative MetricsRegistry into a
// time series (throughput, latency quantiles, shed/swap events per tick).
//
// Every `interval_s` the recorder takes a registry snapshot, diffs it
// against the previous tick, and appends one JSON object per line:
//
//   {"seq":3,"wall_unix_s":1754556789.1,"uptime_s":30.0,"interval_s":10.0,
//    "counters":{"serve.executor.requests":104211,...},      // deltas > 0
//    "gauges":{"serve.executor.queue_depth":12,...},         // current
//    "histograms":{"serve.request.total_seconds":
//      {"count":104211,"sum":61.2,"p50":0.00052,"p99":0.0041,
//       "p999":0.012,"max":0.031},...}}                      // deltas
//
// Histogram quantiles are computed on the interval's delta buckets, so
// each line reports that interval's p50/p99/p999, not lifetime values
// ("max" is the lifetime max — per-shard maxima cannot be diffed). The
// serve CLI wires this to `--stats-interval-s` / `--stats-out`; the
// continuous-ops scenario replays the file to observe drift and swaps.

#ifndef TELCO_COMMON_TELEMETRY_FLIGHT_RECORDER_H_
#define TELCO_COMMON_TELEMETRY_FLIGHT_RECORDER_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/telemetry/metrics.h"

namespace telco {

struct FlightRecorderOptions {
  std::string path;           // JSONL output, opened in append mode
  double interval_s = 10.0;   // tick period
  MetricsRegistry* registry = nullptr;  // defaults to Global()
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);
  ~FlightRecorder();  // stops and joins; final tick is flushed

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens the output file, records the baseline snapshot, and starts the
  /// tick thread. IoError when the file cannot be opened.
  Status Start();

  /// Writes one final tick, stops the thread, and closes the file.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// Forces an immediate tick (test hook; also usable for SIGUSR-style
  /// dumps). Only valid between Start() and Stop().
  void TickNow();

 private:
  void Loop();
  // Diffs `now` against previous_ and appends one JSONL line. Caller must
  // hold tick_mutex_.
  void WriteTick(const MetricsSnapshot& now);

  FlightRecorderOptions options_;
  std::FILE* out_ = nullptr;
  std::thread thread_;
  std::mutex mutex_;  // guards stop_ / cv_
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  std::mutex tick_mutex_;  // serializes WriteTick between thread and TickNow
  MetricsSnapshot previous_;
  uint64_t sequence_ = 0;
  double last_uptime_s_ = 0.0;
  std::chrono::steady_clock::time_point start_time_{};
};

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_FLIGHT_RECORDER_H_
