#include "common/telemetry/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/logging.h"
#include "common/telemetry/json.h"

namespace telco {

namespace {

// Round-robin stripe assignment: each thread gets a stable shard index on
// first use, spreading unrelated threads across shards without any
// registry-specific thread-local state (which could dangle when scoped
// test registries are destroyed).
size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

}  // namespace

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kLogHistogram: return "log_histogram";
  }
  return "unknown";
}

namespace log_buckets {

const std::vector<double>& Bounds() {
  // Leaked like Global(): histogram handles cache the bounds address.
  static const std::vector<double>* const kBounds = [] {
    auto* bounds = new std::vector<double>();
    bounds->reserve(kNumBounds);
    bounds->push_back(std::ldexp(1.0, kMinExponent));
    for (int octave = kMinExponent; octave < kMaxExponent; ++octave) {
      const double base = std::ldexp(1.0, octave);
      for (int sub = 1; sub <= kSubBuckets; ++sub) {
        bounds->push_back(base * (1.0 + static_cast<double>(sub) / kSubBuckets));
      }
    }
    return bounds;
  }();
  return *kBounds;
}

size_t BucketIndex(double value) {
  // Mirror upper_bound's [lower, upper) bucket semantics exactly: a value
  // equal to an edge belongs to the bucket above it, and NaN compares
  // false against every edge, falling through to the overflow bucket.
  if (std::isnan(value)) return kNumBounds;
  if (value < std::ldexp(1.0, kMinExponent)) return 0;
  if (value >= std::ldexp(1.0, kMaxExponent)) return kNumBounds;
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp
  const int octave = exp - 1;  // value in [2^octave, 2^(octave+1))
  // fraction = value / 2^octave - 1 in [0, 1). Both the subtraction
  // (Sterbenz) and the power-of-two scalings are exact for doubles in
  // this range, so edge values index identically to the binary search.
  const double fraction = 2.0 * mantissa - 1.0;
  const int sub = static_cast<int>(fraction * kSubBuckets);  // floor
  return 1 + static_cast<size_t>(octave - kMinExponent) * kSubBuckets +
         static_cast<size_t>(sub);
}

}  // namespace log_buckets

const std::vector<double>& DurationBuckets() {
  static const std::vector<double>* const kBuckets = new std::vector<double>{
      0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03,
      0.1,    0.3,    1.0,   3.0,   10.0, 30.0, 100.0};
  return *kBuckets;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate inside bucket i: (lower, upper], where the first and
    // overflow buckets borrow the observed min/max as their open edge.
    double lower = i == 0 ? min : bounds[i - 1];
    double upper = i < bounds.size() ? bounds[i] : max;
    lower = std::max(lower, min);
    upper = std::min(std::max(upper, lower), max);
    const double fraction =
        (target - before) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * std::min(1.0, std::max(0.0, fraction));
  }
  return max;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricValue& metric : metrics) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(metric.name) + "\",\"kind\":\"";
    out += MetricKindName(metric.kind);
    out += "\"";
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":" + JsonNumber(static_cast<double>(metric.counter));
        break;
      case MetricKind::kGauge:
        out += ",\"value\":" + JsonNumber(metric.gauge);
        break;
      case MetricKind::kHistogram:
      case MetricKind::kLogHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out += ",\"count\":" + JsonNumber(static_cast<double>(h.count));
        out += ",\"sum\":" + JsonNumber(h.sum);
        out += ",\"min\":" + JsonNumber(h.min);
        out += ",\"max\":" + JsonNumber(h.max);
        out += ",\"bounds\":[";
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += JsonNumber(h.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (size_t i = 0; i < h.buckets.size(); ++i) {
          if (i > 0) out += ",";
          out += JsonNumber(static_cast<double>(h.buckets[i]));
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]";
  return out;
}

void Counter::Add(uint64_t n) const {
  if (registry_ != nullptr) registry_->RecordCount(id_, n);
}

void Gauge::Set(double value) const {
  if (registry_ != nullptr) registry_->RecordGauge(id_, value);
}

void Histogram::Observe(double value) const {
  if (registry_ == nullptr) return;
  const std::vector<double>& bounds = *bounds_;
  // O(1) frexp indexing for the log-bucketed kind (417 edges would make
  // the binary search ~9 probes on the serve hot path); upper-bound
  // search for fixed buckets. Both share [lower, upper) edge semantics,
  // and the final bucket is the overflow bin either way.
  const size_t bucket =
      log_bucketed_
          ? log_buckets::BucketIndex(value)
          : static_cast<size_t>(std::upper_bound(bounds.begin(), bounds.end(),
                                                 value) -
                                bounds.begin());
  registry_->RecordObservation(id_, bucket, bounds.size() + 1, value);
}

MetricsRegistry::MetricsRegistry() : shards_(kNumShards) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so metric handles in function-local statics stay valid during
  // static destruction.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

uint32_t MetricsRegistry::Register(const std::string& name, MetricKind kind,
                                   const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Descriptor& existing = descriptors_[it->second];
    TELCO_CHECK(existing.kind == kind)
        << "metric '" << name << "' re-registered as "
        << MetricKindName(kind) << " but is a "
        << MetricKindName(existing.kind);
    if (kind == MetricKind::kHistogram || kind == MetricKind::kLogHistogram) {
      TELCO_CHECK(existing.bounds == *bounds)
          << "metric '" << name << "' re-registered with different buckets";
    }
    return it->second;
  }
  const uint32_t id = static_cast<uint32_t>(descriptors_.size());
  Descriptor desc;
  desc.name = name;
  desc.kind = kind;
  if (bounds != nullptr) desc.bounds = *bounds;
  descriptors_.push_back(std::move(desc));
  by_name_.emplace(name, id);
  if (gauges_.size() <= id) gauges_.resize(id + 1, 0.0);
  return id;
}

Counter MetricsRegistry::GetCounter(const std::string& name) {
  return Counter(this, Register(name, MetricKind::kCounter, nullptr));
}

Gauge MetricsRegistry::GetGauge(const std::string& name) {
  return Gauge(this, Register(name, MetricKind::kGauge, nullptr));
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds) {
  const uint32_t id = Register(name, MetricKind::kHistogram, &bounds);
  const std::vector<double>* stable_bounds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stable_bounds = &descriptors_[id].bounds;  // deque: stable address
  }
  return Histogram(this, id, stable_bounds, /*log_bucketed=*/false);
}

Histogram MetricsRegistry::GetLogHistogram(const std::string& name) {
  const uint32_t id =
      Register(name, MetricKind::kLogHistogram, &log_buckets::Bounds());
  // The layout is process-wide and leaked, so the handle can point at it
  // directly instead of the descriptor's copy.
  return Histogram(this, id, &log_buckets::Bounds(), /*log_bucketed=*/true);
}

MetricsRegistry::Shard& MetricsRegistry::ShardForThisThread() const {
  return const_cast<Shard&>(shards_[ThisThreadStripe() % kNumShards]);
}

void MetricsRegistry::RecordCount(uint32_t id, uint64_t n) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  shard.cells[id].count += n;
}

void MetricsRegistry::RecordObservation(uint32_t id, size_t bucket,
                                        size_t num_buckets, double value) {
  Shard& shard = ShardForThisThread();
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  Cell& cell = shard.cells[id];
  if (cell.buckets.empty()) cell.buckets.resize(num_buckets, 0);
  if (cell.count == 0 || value < cell.min) cell.min = value;
  if (cell.count == 0 || value > cell.max) cell.max = value;
  ++cell.count;
  cell.sum += value;
  ++cell.buckets[bucket];
}

void MetricsRegistry::RecordGauge(uint32_t id, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.size() <= id) gauges_.resize(id + 1, 0.0);
  gauges_[id] = value;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::vector<Descriptor> descriptors;
  std::vector<double> gauges;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    descriptors.assign(descriptors_.begin(), descriptors_.end());
    gauges = gauges_;
  }
  snapshot.metrics.resize(descriptors.size());
  for (size_t id = 0; id < descriptors.size(); ++id) {
    MetricValue& metric = snapshot.metrics[id];
    metric.name = descriptors[id].name;
    metric.kind = descriptors[id].kind;
    if (metric.kind == MetricKind::kGauge && id < gauges.size()) {
      metric.gauge = gauges[id];
    }
    if (metric.kind == MetricKind::kHistogram ||
        metric.kind == MetricKind::kLogHistogram) {
      metric.histogram.bounds = descriptors[id].bounds;
      metric.histogram.buckets.resize(descriptors[id].bounds.size() + 1, 0);
    }
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (size_t id = 0; id < shard.cells.size() && id < snapshot.metrics.size();
         ++id) {
      const Cell& cell = shard.cells[id];
      MetricValue& metric = snapshot.metrics[id];
      switch (metric.kind) {
        case MetricKind::kCounter:
          metric.counter += cell.count;
          break;
        case MetricKind::kGauge:
          break;
        case MetricKind::kHistogram:
        case MetricKind::kLogHistogram: {
          HistogramSnapshot& h = metric.histogram;
          if (cell.count > 0) {
            if (h.count == 0 || cell.min < h.min) h.min = cell.min;
            if (h.count == 0 || cell.max > h.max) h.max = cell.max;
            h.count += cell.count;
            h.sum += cell.sum;
            for (size_t b = 0; b < cell.buckets.size() && b < h.buckets.size();
                 ++b) {
              h.buckets[b] += cell.buckets[b];
            }
          }
          break;
        }
      }
    }
  }
  std::sort(snapshot.metrics.begin(), snapshot.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cells.clear();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return descriptors_.size();
}

}  // namespace telco
