// Unified telemetry timer types (replaces common/stopwatch.h and
// common/stage_timer.h): a wall-clock Stopwatch, process-CPU-time
// sampling, and the named per-stage accumulator behind
// Pipeline::timings(), `telcochurn evaluate --timings`, the run report
// and the bench harnesses. ScopedStageTimer additionally opens a
// TraceSpan for the stage, so every timed pipeline stage appears in
// --trace-out output for free.

#ifndef TELCO_COMMON_TELEMETRY_TIMER_H_
#define TELCO_COMMON_TELEMETRY_TIMER_H_

#include <chrono>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/telemetry/trace.h"

namespace telco {

/// \brief Measures elapsed wall-clock time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement from now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief CPU seconds consumed by the whole process (all threads) so far;
/// 0.0 where unsupported.
inline double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

/// \brief Wall + process-CPU seconds accumulated under one stage name.
struct StageEntry {
  std::string name;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

/// \brief Accumulates per-stage timings, preserving first-seen order.
class StageTimings {
 public:
  /// Adds to the named stage (created on first use).
  void Add(const std::string& name, double wall_seconds,
           double cpu_seconds = 0.0) {
    for (StageEntry& entry : stages_) {
      if (entry.name == name) {
        entry.wall_seconds += wall_seconds;
        entry.cpu_seconds += cpu_seconds;
        return;
      }
    }
    stages_.push_back(StageEntry{name, wall_seconds, cpu_seconds});
  }

  /// Stages in first-seen order.
  const std::vector<StageEntry>& stages() const { return stages_; }

  /// (stage, wall seconds) pairs; compatibility view of stages().
  std::vector<std::pair<std::string, double>> entries() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(stages_.size());
    for (const StageEntry& entry : stages_) {
      out.emplace_back(entry.name, entry.wall_seconds);
    }
    return out;
  }

  /// Total wall seconds across stages.
  double Total() const {
    double total = 0.0;
    for (const StageEntry& entry : stages_) total += entry.wall_seconds;
    return total;
  }

  void Clear() { stages_.clear(); }

  /// One line per stage: "  <name>  <wall> s  (cpu <cpu> s)", plus total.
  std::string ToString() const {
    std::string out;
    for (const StageEntry& entry : stages_) {
      out += StrFormat("  %-14s %9.3f s  (cpu %9.3f s)\n", entry.name.c_str(),
                       entry.wall_seconds, entry.cpu_seconds);
    }
    out += StrFormat("  %-14s %9.3f s", "total", Total());
    return out;
  }

 private:
  std::vector<StageEntry> stages_;
};

/// \brief Adds the elapsed scope wall/CPU time to a stage on destruction
/// and traces the scope as a span named after the stage.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimings* timings, std::string name)
      : timings_(timings),
        name_(std::move(name)),
        span_(name_),
        cpu_start_(ProcessCpuSeconds()) {}

  ~ScopedStageTimer() {
    if (timings_ != nullptr) {
      timings_->Add(name_, watch_.ElapsedSeconds(),
                    ProcessCpuSeconds() - cpu_start_);
    }
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimings* timings_;
  std::string name_;
  TraceSpan span_;
  Stopwatch watch_;
  double cpu_start_;
};

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_TIMER_H_
