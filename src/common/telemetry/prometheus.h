// Prometheus text exposition (version 0.0.4) for MetricsSnapshot.
//
// Translates the dotted `layer.component.name` metric names into the
// `[a-zA-Z0-9_]` charset Prometheus requires and emits one family per
// metric: counters and gauges as single samples, histograms (both the
// fixed-bucket and log-bucketed kinds) as cumulative `_bucket{le="..."}`
// series plus `_sum` and `_count`, exactly as a scraper expects. The
// serve front-end's `--metrics-port` endpoint serves this text.

#ifndef TELCO_COMMON_TELEMETRY_PROMETHEUS_H_
#define TELCO_COMMON_TELEMETRY_PROMETHEUS_H_

#include <string>

#include "common/telemetry/metrics.h"

namespace telco {

/// `serve.request.total_seconds` -> `serve_request_total_seconds`; any
/// character outside [a-zA-Z0-9_] becomes '_', and a leading digit gets a
/// '_' prefix.
std::string PrometheusMetricName(const std::string& name);

/// The whole snapshot in Prometheus text format, with `# TYPE` comments.
/// Histogram buckets are emitted cumulatively and always end with the
/// `le="+Inf"` bucket equal to `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_PROMETHEUS_H_
