// RunReport: the one-JSON-document-per-run summary written by
// `telcochurn ... --report-out` and by the bench harnesses
// (BENCH_pipeline.json shares this schema, with kind == "bench").
//
// The document carries the config fingerprint, per-stage wall/CPU
// timings, a full metric snapshot, and the four ranking-quality numbers.
// ToJson/FromJson round-trip so the `telcochurn metrics` verb (and the
// bench_smoke harness) can re-read and pretty-print a saved report.
// This layer does no file I/O — callers persist the JSON string with
// WriteFileAtomic (storage links common, not the reverse).

#ifndef TELCO_COMMON_TELEMETRY_RUN_REPORT_H_
#define TELCO_COMMON_TELEMETRY_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/telemetry/metrics.h"
#include "common/telemetry/timer.h"

namespace telco {

/// \brief The four churn-ranking quality numbers (paper Eqs. 8–10).
/// Mirrors ml's RankingMetrics without depending on the ml layer.
struct RunQuality {
  double auc = 0.0;
  double pr_auc = 0.0;
  double recall_at_u = 0.0;
  double precision_at_u = 0.0;
  uint64_t u = 0;
};

/// \brief One structured run summary; see file comment for the schema.
struct RunReport {
  static constexpr int kSchemaVersion = 1;

  int schema_version = kSchemaVersion;
  std::string kind = "run";  // "run" for CLI runs, "bench" for harnesses
  std::string command;       // CLI verb or benchmark name
  /// Config key/value pairs in insertion order; fingerprint-style.
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<StageEntry> stages;
  double total_wall_seconds = 0.0;
  bool has_quality = false;
  RunQuality quality;
  MetricsSnapshot metrics;

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }

  /// Copies the accumulated stage timings in.
  void SetStages(const StageTimings& timings) {
    stages = timings.stages();
    total_wall_seconds = timings.Total();
  }

  void SetQuality(const RunQuality& q) {
    has_quality = true;
    quality = q;
  }

  /// The complete report as a single JSON object.
  std::string ToJson() const;

  /// Parses a document produced by ToJson (tolerates unknown keys).
  static Result<RunReport> FromJson(std::string_view text);

  /// Human-readable rendering used by `telcochurn metrics`.
  std::string ToPrettyString() const;
};

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_RUN_REPORT_H_
