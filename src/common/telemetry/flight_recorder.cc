#include "common/telemetry/flight_recorder.h"

#include <utility>

#include "common/telemetry/json.h"

namespace telco {

namespace {

// Interval-delta view of a histogram; quantiles interpolate the delta
// buckets. min/max borrow the lifetime values only as interpolation
// clamps (per-shard extrema cannot be diffed across snapshots).
HistogramSnapshot DeltaHistogram(const HistogramSnapshot& now,
                                 const HistogramSnapshot* prev) {
  HistogramSnapshot delta = now;
  if (prev == nullptr || prev->count == 0) return delta;
  delta.count = now.count - prev->count;
  delta.sum = now.sum - prev->sum;
  for (size_t i = 0; i < delta.buckets.size() && i < prev->buckets.size();
       ++i) {
    delta.buckets[i] -= prev->buckets[i];
  }
  return delta;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) options_.registry = &MetricsRegistry::Global();
}

FlightRecorder::~FlightRecorder() { Stop(); }

Status FlightRecorder::Start() {
  out_ = std::fopen(options_.path.c_str(), "a");
  if (out_ == nullptr) {
    return Status::IoError("flight recorder cannot open " + options_.path);
  }
  previous_ = options_.registry->Snapshot();
  start_time_ = std::chrono::steady_clock::now();
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void FlightRecorder::Stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final tick so short-lived runs still produce at least one record.
  TickNow();
  started_ = false;
  std::fclose(out_);
  out_ = nullptr;
}

void FlightRecorder::TickNow() {
  if (!started_) return;
  std::lock_guard<std::mutex> lock(tick_mutex_);
  WriteTick(options_.registry->Snapshot());
}

void FlightRecorder::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    TickNow();
    lock.lock();
  }
}

void FlightRecorder::WriteTick(const MetricsSnapshot& now) {
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  const double wall_unix_s =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::string counters;
  std::string gauges;
  std::string histograms;
  // Both snapshots are sorted by name; for each current metric find its
  // predecessor (linear Find is fine at ~50 metrics per tick).
  for (const MetricValue& metric : now.metrics) {
    const MetricValue* prev = previous_.Find(metric.name);
    const std::string key = "\"" + JsonEscape(metric.name) + "\":";
    switch (metric.kind) {
      case MetricKind::kCounter: {
        const uint64_t before =
            prev != nullptr && prev->kind == MetricKind::kCounter
                ? prev->counter
                : 0;
        const uint64_t delta = metric.counter - before;
        if (delta == 0) continue;  // keep lines small: elide idle counters
        if (!counters.empty()) counters += ",";
        counters += key + JsonNumber(static_cast<double>(delta));
        break;
      }
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += key + JsonNumber(metric.gauge);
        break;
      case MetricKind::kHistogram:
      case MetricKind::kLogHistogram: {
        const HistogramSnapshot delta = DeltaHistogram(
            metric.histogram,
            prev != nullptr && prev->kind == metric.kind ? &prev->histogram
                                                         : nullptr);
        if (delta.count == 0) continue;
        if (!histograms.empty()) histograms += ",";
        histograms += key + "{\"count\":" +
                      JsonNumber(static_cast<double>(delta.count)) +
                      ",\"sum\":" + JsonNumber(delta.sum) +
                      ",\"p50\":" + JsonNumber(delta.Quantile(0.50)) +
                      ",\"p99\":" + JsonNumber(delta.Quantile(0.99)) +
                      ",\"p999\":" + JsonNumber(delta.Quantile(0.999)) +
                      ",\"max\":" + JsonNumber(metric.histogram.max) + "}";
        break;
      }
    }
  }
  const double interval_s = uptime_s - last_uptime_s_;  // actual, not nominal
  std::string line = "{\"seq\":" + JsonNumber(static_cast<double>(sequence_)) +
                     ",\"wall_unix_s\":" + JsonNumber(wall_unix_s) +
                     ",\"uptime_s\":" + JsonNumber(uptime_s) +
                     ",\"interval_s\":" + JsonNumber(interval_s) +
                     ",\"counters\":{" + counters + "},\"gauges\":{" + gauges +
                     "},\"histograms\":{" + histograms + "}}\n";
  std::fwrite(line.data(), 1, line.size(), out_);
  std::fflush(out_);
  previous_ = now;
  last_uptime_s_ = uptime_s;
  ++sequence_;
}

}  // namespace telco
