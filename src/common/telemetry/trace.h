// Trace spans with Chrome trace-event JSON export.
//
// A TraceSpan is an RAII timer: construction records the begin time, the
// destructor appends one complete event to the recording thread's buffer.
// Recording is off by default (one relaxed atomic load per span), enabled
// by the CLI's --trace-out flag or a test's TraceRecorder::Start().
//
// Nesting across ThreadPool workers: every thread carries a current-span
// id in TraceContext. ThreadPool::Submit / ParallelForChunks capture the
// submitting thread's current id at enqueue and restore it inside the
// worker with a TraceContext::Scope, so spans opened inside a pool task
// report the submitting span as their parent. Export sorts events by
// (begin, longest-first) which is the order Perfetto expects for nested
// slices sharing a timestamp.

#ifndef TELCO_COMMON_TELEMETRY_TRACE_H_
#define TELCO_COMMON_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace telco {

/// \brief One finished span, in microseconds since recorder start.
struct TraceEvent {
  std::string name;
  uint64_t id = 0;         // unique per span
  uint64_t parent_id = 0;  // 0 = root
  uint32_t tid = 0;        // recorder-assigned stable thread number
  double begin_us = 0.0;
  double duration_us = 0.0;
};

/// \brief Process-wide span sink. Threads append to private buffers; Stop
/// + Export drain them into Chrome trace-event JSON.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Begins recording (clears previously collected events).
  void Start();

  /// Stops recording; spans finishing afterwards are dropped.
  void Stop();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Drains all per-thread buffers, sorted by (begin, duration desc, id).
  std::vector<TraceEvent> Collect();

  /// Chrome trace-event JSON ("traceEvents" array of "ph":"X" slices).
  /// Loadable in Perfetto / chrome://tracing.
  std::string ExportJson();

  /// Microseconds since recorder start — the timebase of every event.
  /// Public so the serve path can stamp request arrival for spans whose
  /// lifetime crosses threads (see AppendCompleted).
  double NowMicros() const;

  /// Reserves a span id without opening an RAII scope. Used for request
  /// spans: the reader thread allocates the id at arrival, the executor
  /// parents its stage spans under it, and the writer closes it with
  /// AppendCompleted once the response bytes are flushed.
  uint64_t AllocateSpanId() { return NextSpanId(); }

  /// Appends an already-finished span with explicit timing (a no-op while
  /// recording is disabled). Timestamps come from NowMicros().
  void AppendCompleted(std::string name, uint64_t id, uint64_t parent_id,
                       double begin_us, double end_us);

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    std::mutex mutex;
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  TraceRecorder() = default;

  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  ThreadBuffer* BufferForThisThread();
  void Append(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int64_t> epoch_ns_{0};

  std::mutex registry_mutex_;
  // Buffers are heap-allocated and leaked so thread-local pointers held by
  // already-running threads stay valid for the process lifetime.
  std::vector<ThreadBuffer*> buffers_;
  uint32_t next_tid_ = 0;
};

/// \brief The calling thread's current (innermost open) span id.
class TraceContext {
 public:
  static uint64_t CurrentSpanId();

  /// Overrides the current span id for a scope; used by ThreadPool to make
  /// task-side spans children of the submitting span.
  class Scope {
   public:
    explicit Scope(uint64_t span_id);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    uint64_t saved_;
  };

 private:
  friend class TraceSpan;
  static void Set(uint64_t span_id);
};

/// \brief RAII span: times its scope and records one TraceEvent on the
/// global recorder (no-op while recording is disabled).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  uint64_t id() const { return id_; }

 private:
  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  double begin_us_ = 0.0;
  bool active_ = false;
};

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_TRACE_H_
