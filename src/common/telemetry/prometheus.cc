#include "common/telemetry/prometheus.h"

#include <cctype>

#include "common/telemetry/json.h"

namespace telco {

namespace {

// Sample values use the same shortest-round-trip formatting as the JSON
// writer, so a scraper (or the round-trip test) recovers exact doubles.
std::string SampleNumber(double value) { return JsonNumber(value); }

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& metric : snapshot.metrics) {
    const std::string name = PrometheusMetricName(metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + SampleNumber(static_cast<double>(metric.counter)) +
               "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + SampleNumber(metric.gauge) + "\n";
        break;
      case MetricKind::kHistogram:
      case MetricKind::kLogHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += i < h.buckets.size() ? h.buckets[i] : 0;
          // Skip interior zero-delta buckets: the log-bucketed kind has
          // 418 bins and a scrape of all-zero lines would dwarf the rest
          // of the page. Cumulative semantics survive elision.
          if (i < h.buckets.size() && h.buckets[i] == 0 && i != 0) continue;
          out += name + "_bucket{le=\"" + SampleNumber(h.bounds[i]) + "\"} " +
                 SampleNumber(static_cast<double>(cumulative)) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               SampleNumber(static_cast<double>(h.count)) + "\n";
        out += name + "_sum " + SampleNumber(h.sum) + "\n";
        out += name + "_count " + SampleNumber(static_cast<double>(h.count)) +
               "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace telco
