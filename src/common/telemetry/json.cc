#include "common/telemetry/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"

namespace telco {

namespace {

constexpr int kMaxDepth = 100;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    TELCO_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    JsonValue value;
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        TELCO_ASSIGN_OR_RETURN(value.string, ParseString());
        value.type = JsonValue::Type::kString;
        return value;
      }
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        value.type = JsonValue::Type::kNull;
        return value;
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return value;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      TELCO_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      TELCO_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
      value.fields.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return value;
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return value;
    while (true) {
      TELCO_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
      value.items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return value;
      return Error("expected ',' or ']' in array");
    }
  }

  // Appends `codepoint` UTF-8 encoded.
  static void AppendUtf8(uint32_t codepoint, std::string* out) {
    if (codepoint < 0x80) {
      out->push_back(static_cast<char>(codepoint));
    } else if (codepoint < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else if (codepoint < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          TELCO_ASSIGN_OR_RETURN(uint32_t code, ParseHex4());
          // Combine a surrogate pair when one follows; otherwise emit the
          // lone code unit as-is.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            const size_t saved = pos_;
            pos_ += 2;
            TELCO_ASSIGN_OR_RETURN(const uint32_t low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = saved;
            }
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("unexpected character");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    JsonValue out;
    out.type = JsonValue::Type::kNumber;
    out.number = value;
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || member->type != Type::kNumber) return fallback;
  return member->number;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* member = Find(key);
  if (member == nullptr || member->type != Type::kString) return fallback;
  return member->string;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  // Shortest round-trip form: parses back to the identical double (serve
  // parity depends on this) and is ~10x cheaper than %.17g on the
  // per-response hot path.
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

}  // namespace telco
