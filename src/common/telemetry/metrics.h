// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// Recording is sharded: each thread writes to one of a fixed set of
// shard cells chosen by a per-thread stripe index, so concurrent hot-loop
// updates from ThreadPool workers touch disjoint (uncontended) mutexes.
// Snapshot() merges the shards into exact totals; gauges are last-write
// values kept centrally (sharded merging has no meaningful semantics for
// them). Metric handles are cheap value types safe to cache in
// function-local statics:
//
//   static const Counter kRows =
//       MetricsRegistry::Global().GetCounter("storage.warehouse.rows_read");
//   kRows.Add(table.num_rows());
//
// Names follow the `layer.component.name` convention (DESIGN.md §8).
// The process-wide Global() registry backs production instrumentation;
// tests construct scoped registries for exact, isolated assertions.

#ifndef TELCO_COMMON_TELEMETRY_METRICS_H_
#define TELCO_COMMON_TELEMETRY_METRICS_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace telco {

enum class MetricKind : int {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,     // fixed bucket edges chosen at registration
  kLogHistogram = 3,  // base-2 sub-bucketed (HDR-style) duration buckets
};

/// "counter" / "gauge" / "histogram" / "log_histogram".
const char* MetricKindName(MetricKind kind);

/// Bucket layout of the log-bucketed (HDR-style) histogram kind: base-2
/// octaves from 2^-20 s (~1 µs) to 2^6 s (64 s), each split into 16 linear
/// sub-buckets, so every bucket's relative width is at most 1/16 (~6%) and
/// quantile interpolation error stays below half of that. Values below
/// the range land in bucket 0; values at or above its top edge land in
/// the overflow bucket. The layout is fixed so shard cells merge bucket-by-bucket with
/// exact totals, like the fixed-bucket kind.
namespace log_buckets {

inline constexpr int kMinExponent = -20;  // lowest octave edge: 2^-20 s
inline constexpr int kMaxExponent = 6;    // highest octave edge: 2^6 s
inline constexpr int kSubBuckets = 16;    // linear sub-buckets per octave
inline constexpr size_t kNumBounds =
    static_cast<size_t>(kMaxExponent - kMinExponent) * kSubBuckets + 1;
inline constexpr size_t kNumBuckets = kNumBounds + 1;  // + overflow

/// The shared upper-edge vector (kNumBounds entries, ascending).
const std::vector<double>& Bounds();

/// Bucket index for `value` under the [lower, upper) edge convention —
/// bit-identical to std::upper_bound over Bounds(), but O(1) via frexp.
size_t BucketIndex(double value);

}  // namespace log_buckets

/// \brief Merged state of one histogram: `bounds` are the upper bucket
/// edges; `buckets` has bounds.size() + 1 entries (the last is overflow).
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when count == 0
  double max = 0.0;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket containing the target rank, clamped to [min, max]. Exact
  /// only at bucket edges; 0 when the histogram is empty. Used for the
  /// serving latency p50/p99 summaries.
  double Quantile(double q) const;
};

/// \brief One metric's merged value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;          // kCounter
  double gauge = 0.0;            // kGauge
  HistogramSnapshot histogram;   // kHistogram
};

/// \brief A point-in-time view of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* Find(const std::string& name) const;
  /// JSON array in the run-report schema (see run_report.h).
  std::string ToJson() const;
};

class MetricsRegistry;

/// \brief Monotonic add-only counter handle.
class Counter {
 public:
  Counter() = default;
  void Add(uint64_t n = 1) const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, uint32_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// \brief Last-write-wins gauge handle.
class Gauge {
 public:
  Gauge() = default;
  void Set(double value) const;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, uint32_t id)
      : registry_(registry), id_(id) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
};

/// \brief Histogram handle (fixed-bucket or log-bucketed).
class Histogram {
 public:
  Histogram() = default;
  void Observe(double value) const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, uint32_t id,
            const std::vector<double>* bounds, bool log_bucketed)
      : registry_(registry), id_(id), bounds_(bounds),
        log_bucketed_(log_bucketed) {}
  MetricsRegistry* registry_ = nullptr;
  uint32_t id_ = 0;
  const std::vector<double>* bounds_ = nullptr;
  bool log_bucketed_ = false;
};

/// Default histogram bucket policy for durations in seconds: decade steps
/// from 100us to 100s with a 1-3 split (DESIGN.md §8).
const std::vector<double>& DurationBuckets();

/// \brief Registry of named metrics with sharded, low-contention recording.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or re-fetches) a metric. Re-registering an existing name
  /// with a different kind (or different histogram bounds) is a
  /// programming error and aborts.
  Counter GetCounter(const std::string& name);
  Gauge GetGauge(const std::string& name);
  Histogram GetHistogram(const std::string& name,
                         const std::vector<double>& bounds = DurationBuckets());
  /// Log-bucketed duration histogram (see log_buckets above): O(1) bucket
  /// indexing and ~6% worst-case bucket width across 1 µs – 64 s, the kind
  /// serve latency metrics use for honest p50/p99/p999.
  Histogram GetLogHistogram(const std::string& name);

  /// Merges every shard into exact totals. Totals are exact with respect
  /// to all records that happened-before the call.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all recorded values (registrations survive).
  void Reset();

  /// Number of registered metrics.
  size_t size() const;

  /// The process-wide registry used by production instrumentation.
  static MetricsRegistry& Global();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Descriptor {
    std::string name;
    MetricKind kind;
    std::vector<double> bounds;  // kHistogram only
  };

  // Per-shard accumulation cell; which fields are live depends on kind.
  struct Cell {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::vector<Cell> cells;  // indexed by metric id, grown on demand
  };

  static constexpr size_t kNumShards = 32;

  uint32_t Register(const std::string& name, MetricKind kind,
                    const std::vector<double>* bounds);
  Shard& ShardForThisThread() const;

  void RecordCount(uint32_t id, uint64_t n);
  void RecordObservation(uint32_t id, size_t bucket, size_t num_buckets,
                         double value);
  void RecordGauge(uint32_t id, double value);

  mutable std::mutex mutex_;  // guards descriptors_, by_name_, gauges_
  std::deque<Descriptor> descriptors_;  // stable addresses for handles
  std::unordered_map<std::string, uint32_t> by_name_;
  std::vector<double> gauges_;
  std::vector<Shard> shards_;
};

}  // namespace telco

#endif  // TELCO_COMMON_TELEMETRY_METRICS_H_
