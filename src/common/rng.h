// Deterministic pseudo-random number generation.
//
// Every stochastic component in telcochurn (simulator, classifiers,
// samplers) takes an explicit 64-bit seed so experiments are exactly
// reproducible. Rng wraps xoshiro256++ seeded via SplitMix64 and provides
// the distributions the library needs, avoiding the unspecified (and
// platform-varying) behaviour of <random> distributions.

#ifndef TELCO_COMMON_RNG_H_
#define TELCO_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace telco {

/// \brief SplitMix64 step; used to expand seeds and as a cheap stateless hash.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// \brief Mixes two 64-bit values into one; used to derive substream seeds.
inline uint64_t HashCombine64(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

/// \brief Deterministic RNG (xoshiro256++) with common distributions.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams on all platforms.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& w : s_) w = SplitMix64(sm);
    cached_gaussian_valid_ = false;
  }

  /// Derives an independent generator for a named substream.
  Rng Fork(uint64_t stream_id) {
    return Rng(HashCombine64(Next64(), stream_id));
  }

  /// Next raw 64 random bits.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next64()) * n;
    auto lo = static_cast<uint64_t>(m);
    if (lo < n) {
      const uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next64()) * n;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Standard normal via Box–Muller with caching.
  double Gaussian() {
    if (cached_gaussian_valid_) {
      cached_gaussian_valid_ = false;
      return cached_gaussian_;
    }
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    cached_gaussian_valid_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential with the given rate (lambda). Precondition: rate > 0.
  double Exponential(double rate) {
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / rate;
  }

  /// Poisson-distributed count with the given mean.
  /// Uses Knuth's method for small means and a normal approximation above 64.
  int Poisson(double mean) {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double v = std::round(Gaussian(mean, std::sqrt(mean)));
      return v < 0.0 ? 0 : static_cast<int>(v);
    }
    const double limit = std::exp(-mean);
    double prod = Uniform();
    int n = 0;
    while (prod > limit) {
      prod *= Uniform();
      ++n;
    }
    return n;
  }

  /// Gamma(shape, scale) via Marsaglia–Tsang. Precondition: shape > 0.
  double Gamma(double shape, double scale) {
    if (shape < 1.0) {
      // Boost to shape+1 then apply the standard correction factor.
      const double u = Uniform();
      return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x = Gaussian();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = Uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
        return d * v * scale;
      }
    }
  }

  /// Beta(a, b) via two Gammas.
  double Beta(double a, double b) {
    const double x = Gamma(a, 1.0);
    const double y = Gamma(b, 1.0);
    return x / (x + y);
  }

  /// Log-normal: exp of Normal(mu, sigma) in log space.
  double LogNormal(double mu, double sigma) {
    return std::exp(Gaussian(mu, sigma));
  }

  /// Samples an index in [0, weights.size()) proportional to weights.
  /// Zero-weight entries are never chosen; all-zero weights yield index 0.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double target = Uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Samples a probability vector from a symmetric Dirichlet(alpha).
  std::vector<double> Dirichlet(size_t k, double alpha) {
    std::vector<double> out(k);
    double total = 0.0;
    for (auto& v : out) {
      v = Gamma(alpha, 1.0);
      total += v;
    }
    if (total <= 0.0) {
      for (auto& v : out) v = 1.0 / static_cast<double>(k);
      return out;
    }
    for (auto& v : out) v /= total;
    return out;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir sampling); if k >= n
  /// returns all of [0, n) in order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k) {
    std::vector<size_t> out;
    if (k >= n) {
      out.resize(n);
      for (size_t i = 0; i < n; ++i) out[i] = i;
      return out;
    }
    out.reserve(k);
    for (size_t i = 0; i < k; ++i) out.push_back(i);
    for (size_t i = k; i < n; ++i) {
      const size_t j = UniformInt(static_cast<uint64_t>(i) + 1);
      if (j < k) out[j] = i;
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool cached_gaussian_valid_ = false;
};

}  // namespace telco

#endif  // TELCO_COMMON_RNG_H_
