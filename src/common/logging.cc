#include "common/logging.h"

#include <mutex>

namespace telco {

namespace {
std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::Emit(LogLevel level, const std::string& msg) {
  if (!Enabled(level)) return;
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::cerr << LevelTag(level) << " " << msg << std::endl;
}

}  // namespace telco
