#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/string_util.h"

namespace telco {

namespace {
std::mutex& EmitMutex() {
  static std::mutex m;
  return m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Monotonic seconds since the first log line (not wall time: comparable
// across lines even if the system clock steps).
double SecondsSinceStart() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point kStart = Clock::now();
  return std::chrono::duration<double>(Clock::now() - kStart).count();
}

}  // namespace

bool Logger::ParseLevel(const std::string& text, LogLevel* level) {
  const std::string lower = ToLower(text);
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void Logger::InitFromEnv(LogLevel fallback) {
  LogLevel level = fallback;
  const char* env = std::getenv("TELCO_LOG_LEVEL");
  if (env != nullptr && *env != '\0' && !ParseLevel(env, &level)) {
    SetLevel(fallback);
    Emit(LogLevel::kWarning,
         StrFormat("ignoring invalid TELCO_LOG_LEVEL '%s' "
                   "(want debug|info|warning|error)",
                   env));
    return;
  }
  SetLevel(level);
}

void Logger::Emit(LogLevel level, const std::string& msg) {
  if (!Enabled(level)) return;
  // Build the whole line first so exactly one write happens under the
  // mutex — concurrent ThreadPool workers cannot interleave characters.
  std::string line =
      StrFormat("%-5s %10.3f ", LevelTag(level), SecondsSinceStart());
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace telco
