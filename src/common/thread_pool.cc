#include "common/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace telco {

namespace {

// The pool whose WorkerLoop is running on this thread, if any. Lets
// ParallelFor detect nested use (a worker waiting on the queue it is
// supposed to drain would deadlock a fixed-size pool).
thread_local const ThreadPool* tls_worker_pool = nullptr;

// Shared completion state of one ParallelForChunks call.
struct ChunkWait {
  std::mutex mutex;
  std::condition_variable done;
  size_t pending = 0;
  std::exception_ptr error;
  size_t error_chunk = 0;
};

}  // namespace

size_t ThreadPool::DefaultNumThreads() {
  const size_t fallback = std::max(1u, std::thread::hardware_concurrency());
  const char* env = std::getenv("TELCO_THREADS");
  if (env == nullptr || *env == '\0') return fallback;
  // Degenerate values must never size a pool: garbage or trailing text,
  // zero, negatives, and out-of-range magnitudes (strtol saturates with
  // ERANGE; a "valid" huge count would still exhaust the process) all
  // fall back to hardware concurrency, loudly.
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  constexpr long kMaxThreads = 4096;
  if (end == env || *end != '\0' || errno == ERANGE || v <= 0 ||
      v > kMaxThreads) {
    TELCO_LOG(Warning) << "ignoring invalid TELCO_THREADS='" << env
                       << "' (want an integer in [1, " << kMaxThreads
                       << "]); using hardware concurrency (" << fallback
                       << ")";
    return fallback;
  }
  return static_cast<size_t>(v);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = DefaultNumThreads();
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelForChunks(size_t begin, size_t end,
                                   size_t num_chunks, const ChunkFn& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (num_chunks == 0) {
    num_chunks = std::min<size_t>(n, std::max<size_t>(1, num_threads() * 4));
  }
  num_chunks = std::min(num_chunks, n);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  const size_t chunks = (n + chunk_size - 1) / chunk_size;

  // Inline execution: nothing to fan out, a single worker (queueing would
  // only add latency), or a nested call from one of this pool's own
  // workers (queueing would deadlock). Chunks run in order, so the first
  // exception propagates naturally.
  if (chunks == 1 || num_threads() == 1 || InWorkerThread()) {
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * chunk_size;
      fn(c, lo, std::min(end, lo + chunk_size));
    }
    return;
  }

  ChunkWait wait;
  wait.pending = chunks;
  // Chunk-side spans nest under the caller's current span (see Submit).
  const uint64_t trace_parent = TraceContext::CurrentSpanId();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * chunk_size;
      const size_t hi = std::min(end, lo + chunk_size);
      tasks_.emplace([&wait, &fn, c, lo, hi, trace_parent] {
        TraceContext::Scope trace_scope(trace_parent);
        try {
          fn(c, lo, hi);
        } catch (...) {
          std::lock_guard<std::mutex> lk(wait.mutex);
          // Keep the lowest-index chunk's exception so the error a caller
          // sees does not depend on scheduling.
          if (!wait.error || c < wait.error_chunk) {
            wait.error = std::current_exception();
            wait.error_chunk = c;
          }
        }
        std::lock_guard<std::mutex> lk(wait.mutex);
        if (--wait.pending == 0) wait.done.notify_all();
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lk(wait.mutex);
  wait.done.wait(lk, [&wait] { return wait.pending == 0; });
  if (wait.error) std::rethrow_exception(wait.error);
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  ParallelForChunks(begin, end, 0, [&fn](size_t, size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool;
  return pool;
}

void RunParallelChunks(ThreadPool* pool, size_t begin, size_t end,
                       size_t num_chunks, const ThreadPool::ChunkFn& fn) {
  if (begin >= end) return;
  if (pool != nullptr) {
    pool->ParallelForChunks(begin, end, num_chunks, fn);
    return;
  }
  const size_t n = end - begin;
  if (num_chunks == 0) num_chunks = 1;
  num_chunks = std::min(num_chunks, n);
  const size_t chunk_size = (n + num_chunks - 1) / num_chunks;
  const size_t chunks = (n + chunk_size - 1) / chunk_size;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    fn(c, lo, std::min(end, lo + chunk_size));
  }
}

void RunParallelFor(ThreadPool* pool, size_t begin, size_t end,
                    const std::function<void(size_t)>& fn) {
  RunParallelChunks(pool, begin, end, pool == nullptr ? 1 : 0,
                    [&fn](size_t, size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) fn(i);
                    });
}

}  // namespace telco
