#include "common/thread_pool.h"

#include <algorithm>

namespace telco {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_chunks =
      std::min<size_t>(n, std::max<size_t>(1, num_threads() * 4));
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    if (lo >= end) break;
    const size_t hi = std::min(end, lo + chunk);
    futures.push_back(Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool pool;
  return pool;
}

}  // namespace telco
