// Fault injection for crash-consistency testing.
//
// Durable-I/O code paths call MaybeInjectFault("<site>") at the points
// where a crash would be most damaging (mid-write, between artifact and
// manifest, during reads). Normally the call is a cheap no-op; under
//
//   TELCO_FAULT=<site>:<n>          kill the process (_exit) at the n-th
//                                   hit of <site> — a simulated crash
//   TELCO_FAULT=<site>:<n>:error    return a transient IoError instead,
//                                   exercising the retry-with-backoff path
//
// the n-th execution of that site fires. Multiple comma-separated specs
// are honoured independently. The crash-consistency ctest harness loops
// over KnownFaultSites(), kills a checkpointed pipeline run at each one,
// and asserts that `telcochurn resume` converges to bit-identical output.

#ifndef TELCO_COMMON_FAULT_INJECTION_H_
#define TELCO_COMMON_FAULT_INJECTION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace telco {

/// Exit code of an injected kill, distinguishable from ordinary failures
/// so test harnesses can assert the crash happened at the intended site.
inline constexpr int kFaultExitCode = 86;

/// \brief All registered kill/fault sites, in a stable order. Every entry
/// is reachable from the `telcochurn` CLI flows (run/resume/simulate/
/// serve), so harnesses can iterate the list blindly.
const std::vector<std::string>& KnownFaultSites();

/// \brief The kill-point. Returns OK unless a TELCO_FAULT spec for `site`
/// reaches its trigger count; then either _exit(kFaultExitCode)s (default)
/// or returns a transient IoError (":error" specs).
Status MaybeInjectFault(const char* site);

/// \brief Re-reads TELCO_FAULT and resets all hit counters (tests only —
/// production processes parse the environment once, lazily).
void ResetFaultInjection();

}  // namespace telco

#endif  // TELCO_COMMON_FAULT_INJECTION_H_
