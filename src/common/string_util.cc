#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace telco {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t lo = 0;
  size_t hi = text.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(text[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(text[hi - 1]))) {
    --hi;
  }
  return text.substr(lo, hi - lo);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace telco
