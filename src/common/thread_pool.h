// Fixed-size thread pool with a ParallelFor convenience, used to
// parallelise embarrassingly-parallel stages (random-forest tree fitting,
// PageRank sweeps, simulator months).

#ifndef TELCO_COMMON_THREAD_POOL_H_
#define TELCO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace telco {

/// \brief A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (default: hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  template <typename F>
  std::future<void> Submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit queueing overhead.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Process-wide default pool.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace telco

#endif  // TELCO_COMMON_THREAD_POOL_H_
