// Fixed-size thread pool with ParallelFor/ParallelForChunks convenience
// wrappers, used to parallelise embarrassingly-parallel stages
// (random-forest tree fitting and batch scoring, wide-table family
// builds, PageRank sweeps, LDA finalisation, warehouse CSV loading).
//
// Concurrency contract:
//  - ParallelFor called from inside a pool worker runs inline on the
//    calling thread (a fixed pool with a blocking wait would otherwise
//    deadlock on nested use).
//  - The first exception thrown by an iteration (lowest chunk index wins)
//    is rethrown on the calling thread after all chunks finish.
//  - Chunk grids derived from an explicit `num_chunks` are independent of
//    the pool size, so per-chunk reductions combined in chunk order are
//    bit-identical across thread counts (see RunParallelChunks).
//  - The TELCO_THREADS environment variable overrides the size of the
//    process-wide Default() pool (and any pool constructed with 0).

#ifndef TELCO_COMMON_THREAD_POOL_H_
#define TELCO_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/telemetry/trace.h"

namespace telco {

/// \brief A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Body of one contiguous chunk: fn(chunk_index, lo, hi) covers [lo, hi).
  using ChunkFn = std::function<void(size_t, size_t, size_t)>;

  /// Starts `num_threads` workers (default: TELCO_THREADS if set, else
  /// hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// True iff the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Enqueues a task; the future resolves when it completes. The
  /// submitting thread's current trace span becomes the parent of spans
  /// opened inside the task, so pool work nests under its submitter in
  /// --trace-out output.
  template <typename F>
  std::future<void> Submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    const uint64_t trace_parent = TraceContext::CurrentSpanId();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([task, trace_parent] {
        TraceContext::Scope trace_scope(trace_parent);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit queueing overhead.
  /// Safe to call from a pool worker (runs inline); rethrows the first
  /// iteration exception.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Runs fn(chunk, lo, hi) over a grid of at most `num_chunks` contiguous
  /// chunks covering [begin, end). Pass an explicit num_chunks derived
  /// from the problem size (not the pool size) when the chunks feed a
  /// reduction that must be bit-identical across thread counts;
  /// num_chunks == 0 picks a grid from the pool size.
  void ParallelForChunks(size_t begin, size_t end, size_t num_chunks,
                         const ChunkFn& fn);

  /// Process-wide default pool (sized by TELCO_THREADS when set).
  static ThreadPool& Default();

  /// Threads a default-constructed pool starts: TELCO_THREADS if set to a
  /// positive integer, else hardware concurrency (min 1).
  static size_t DefaultNumThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Pool-optional chunked parallel loop: runs fn(chunk, lo, hi) over
/// the same chunk grid whether `pool` is null (inline, in chunk order) or
/// not, so per-chunk reductions combined in chunk order give bit-identical
/// results serially and in parallel.
void RunParallelChunks(ThreadPool* pool, size_t begin, size_t end,
                       size_t num_chunks, const ThreadPool::ChunkFn& fn);

/// \brief Pool-optional element-wise parallel loop over [begin, end).
void RunParallelFor(ThreadPool* pool, size_t begin, size_t end,
                    const std::function<void(size_t)>& fn);

}  // namespace telco

#endif  // TELCO_COMMON_THREAD_POOL_H_
