// Status: error-signalling value type used across the telcochurn public API.
//
// The library does not throw exceptions across API boundaries (Arrow/RocksDB
// idiom). Functions that can fail return a Status, or a Result<T> when they
// also produce a value on success.

#ifndef TELCO_COMMON_STATUS_H_
#define TELCO_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace telco {

/// Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kTypeError = 5,
  kIoError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// Transient overload (e.g. a full admission queue): the caller should
  /// back off and retry, unlike the permanent failure codes above.
  kUnavailable = 9,
};

/// \brief Human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// Cheap to copy in the OK case (single pointer test); failure state is
/// heap-allocated so sizeof(Status) == sizeof(void*).
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  /// Creates a status with the given code and message.
  Status(StatusCode code, std::string msg);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// \brief Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The error message; empty when ok().
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

/// Propagates a non-OK Status to the caller.
#define TELCO_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::telco::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace telco

#endif  // TELCO_COMMON_STATUS_H_
