#include "common/fault_injection.h"

#include <unistd.h>

#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry/metrics.h"

namespace telco {

namespace {

// Every site must appear here: the crash-consistency harness iterates this
// list, so an unlisted site would silently escape coverage (and a listed
// but unreachable one would hang the harness's kill assertion).
const char* const kSites[] = {
    "atomic.commit",            // AtomicFile: before fsync of the tmp file
    "atomic.rename",            // AtomicFile: after fsync, before rename
    "csv.write",                // WriteCsv: table serialised, not committed
    "warehouse.save.table",     // SaveWarehouse: before each table commit
    "warehouse.save.chunk",     // SaveWarehouse: before each chunk serialise
    "warehouse.save.manifest",  // SaveWarehouse: before MANIFEST commit
    "warehouse.stream.chunk",   // StreamingTableSink: before each chunk write
    "warehouse.load.table",     // LoadWarehouse: per-table read (retried)
    "model.save",               // SaveRandomForest: before commit
    "model.load",               // LoadRandomForest: file read (retried)
    "checkpoint.artifact",      // PipelineCheckpoint: before artifact commit
    "checkpoint.manifest",      // PipelineCheckpoint: before STAGES commit
    "serve.respond",            // StdioScoringServer: before a response line
};

struct FaultSpec {
  std::string site;
  int trigger_at = 0;  // 1-based hit count that fires the fault
  bool as_error = false;
  int hits = 0;
};

struct FaultState {
  std::mutex mutex;
  bool parsed = false;
  std::vector<FaultSpec> specs;
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

bool KnownSite(const std::string& site) {
  for (const char* s : kSites) {
    if (site == s) return true;
  }
  return false;
}

// Parses "site:n[:error][,site:n[:error]...]"; malformed entries are
// reported once and skipped rather than failing the process.
std::vector<FaultSpec> ParseEnv() {
  std::vector<FaultSpec> specs;
  const char* env = std::getenv("TELCO_FAULT");
  if (env == nullptr || env[0] == '\0') return specs;
  for (const auto& entry : Split(env, ',')) {
    const auto pieces = Split(entry, ':');
    FaultSpec spec;
    bool valid = pieces.size() == 2 || pieces.size() == 3;
    if (valid) {
      spec.site = pieces[0];
      spec.trigger_at = std::atoi(pieces[1].c_str());
      valid = spec.trigger_at >= 1 && KnownSite(spec.site);
      if (valid && pieces.size() == 3) {
        spec.as_error = pieces[2] == "error";
        valid = spec.as_error;
      }
    }
    if (!valid) {
      TELCO_LOG(Warning) << "ignoring malformed TELCO_FAULT entry '" << entry
                         << "'";
      continue;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

const std::vector<std::string>& KnownFaultSites() {
  static const std::vector<std::string>* sites = [] {
    auto* v = new std::vector<std::string>();
    for (const char* s : kSites) v->push_back(s);
    return v;
  }();
  return *sites;
}

Status MaybeInjectFault(const char* site) {
  static const Counter site_hits =
      MetricsRegistry::Global().GetCounter("common.fault.site_hits");
  static const Counter injected_errors =
      MetricsRegistry::Global().GetCounter("common.fault.injected_errors");
  site_hits.Add();
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.parsed) {
    state.specs = ParseEnv();
    state.parsed = true;
  }
  for (FaultSpec& spec : state.specs) {
    if (spec.site != site) continue;
    if (++spec.hits != spec.trigger_at) continue;
    if (spec.as_error) {
      injected_errors.Add();
      return Status::IoError(StrFormat(
          "injected transient fault at %s (hit %d)", site, spec.hits));
    }
    // Simulated crash: skip all cleanup, exactly like a kill -9 as far as
    // the filesystem is concerned (no flushes, no atexit handlers).
    ::_exit(kFaultExitCode);
  }
  return Status::OK();
}

void ResetFaultInjection() {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.specs = ParseEnv();
  state.parsed = true;
}

}  // namespace telco
