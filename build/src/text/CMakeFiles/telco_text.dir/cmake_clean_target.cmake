file(REMOVE_RECURSE
  "libtelco_text.a"
)
