file(REMOVE_RECURSE
  "CMakeFiles/telco_text.dir/lda.cc.o"
  "CMakeFiles/telco_text.dir/lda.cc.o.d"
  "CMakeFiles/telco_text.dir/vocabulary.cc.o"
  "CMakeFiles/telco_text.dir/vocabulary.cc.o.d"
  "libtelco_text.a"
  "libtelco_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
