# Empty dependencies file for telco_text.
# This may be replaced when dependencies are built.
