file(REMOVE_RECURSE
  "libtelco_storage.a"
)
