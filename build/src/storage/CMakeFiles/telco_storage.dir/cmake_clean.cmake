file(REMOVE_RECURSE
  "CMakeFiles/telco_storage.dir/catalog.cc.o"
  "CMakeFiles/telco_storage.dir/catalog.cc.o.d"
  "CMakeFiles/telco_storage.dir/csv.cc.o"
  "CMakeFiles/telco_storage.dir/csv.cc.o.d"
  "CMakeFiles/telco_storage.dir/storage.cc.o"
  "CMakeFiles/telco_storage.dir/storage.cc.o.d"
  "CMakeFiles/telco_storage.dir/warehouse_io.cc.o"
  "CMakeFiles/telco_storage.dir/warehouse_io.cc.o.d"
  "libtelco_storage.a"
  "libtelco_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
