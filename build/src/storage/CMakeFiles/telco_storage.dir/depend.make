# Empty dependencies file for telco_storage.
# This may be replaced when dependencies are built.
