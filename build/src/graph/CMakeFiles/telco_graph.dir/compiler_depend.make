# Empty compiler generated dependencies file for telco_graph.
# This may be replaced when dependencies are built.
