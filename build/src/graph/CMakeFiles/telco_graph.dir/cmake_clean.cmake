file(REMOVE_RECURSE
  "CMakeFiles/telco_graph.dir/graph.cc.o"
  "CMakeFiles/telco_graph.dir/graph.cc.o.d"
  "CMakeFiles/telco_graph.dir/label_propagation.cc.o"
  "CMakeFiles/telco_graph.dir/label_propagation.cc.o.d"
  "CMakeFiles/telco_graph.dir/pagerank.cc.o"
  "CMakeFiles/telco_graph.dir/pagerank.cc.o.d"
  "libtelco_graph.a"
  "libtelco_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
