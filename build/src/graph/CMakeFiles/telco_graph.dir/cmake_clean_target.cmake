file(REMOVE_RECURSE
  "libtelco_graph.a"
)
