file(REMOVE_RECURSE
  "libtelco_churn.a"
)
