file(REMOVE_RECURSE
  "CMakeFiles/telco_churn.dir/campaign_simulator.cc.o"
  "CMakeFiles/telco_churn.dir/campaign_simulator.cc.o.d"
  "CMakeFiles/telco_churn.dir/churn_model.cc.o"
  "CMakeFiles/telco_churn.dir/churn_model.cc.o.d"
  "CMakeFiles/telco_churn.dir/pipeline.cc.o"
  "CMakeFiles/telco_churn.dir/pipeline.cc.o.d"
  "CMakeFiles/telco_churn.dir/retention.cc.o"
  "CMakeFiles/telco_churn.dir/retention.cc.o.d"
  "CMakeFiles/telco_churn.dir/root_cause.cc.o"
  "CMakeFiles/telco_churn.dir/root_cause.cc.o.d"
  "libtelco_churn.a"
  "libtelco_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
