# Empty dependencies file for telco_churn.
# This may be replaced when dependencies are built.
