file(REMOVE_RECURSE
  "CMakeFiles/telco_datagen.dir/emitters.cc.o"
  "CMakeFiles/telco_datagen.dir/emitters.cc.o.d"
  "CMakeFiles/telco_datagen.dir/population.cc.o"
  "CMakeFiles/telco_datagen.dir/population.cc.o.d"
  "CMakeFiles/telco_datagen.dir/telco_simulator.cc.o"
  "CMakeFiles/telco_datagen.dir/telco_simulator.cc.o.d"
  "CMakeFiles/telco_datagen.dir/text_gen.cc.o"
  "CMakeFiles/telco_datagen.dir/text_gen.cc.o.d"
  "libtelco_datagen.a"
  "libtelco_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
