file(REMOVE_RECURSE
  "libtelco_datagen.a"
)
