# Empty dependencies file for telco_datagen.
# This may be replaced when dependencies are built.
