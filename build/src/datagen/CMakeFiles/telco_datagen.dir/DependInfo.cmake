
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/emitters.cc" "src/datagen/CMakeFiles/telco_datagen.dir/emitters.cc.o" "gcc" "src/datagen/CMakeFiles/telco_datagen.dir/emitters.cc.o.d"
  "/root/repo/src/datagen/population.cc" "src/datagen/CMakeFiles/telco_datagen.dir/population.cc.o" "gcc" "src/datagen/CMakeFiles/telco_datagen.dir/population.cc.o.d"
  "/root/repo/src/datagen/telco_simulator.cc" "src/datagen/CMakeFiles/telco_datagen.dir/telco_simulator.cc.o" "gcc" "src/datagen/CMakeFiles/telco_datagen.dir/telco_simulator.cc.o.d"
  "/root/repo/src/datagen/text_gen.cc" "src/datagen/CMakeFiles/telco_datagen.dir/text_gen.cc.o" "gcc" "src/datagen/CMakeFiles/telco_datagen.dir/text_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/telco_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/telco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/telco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
