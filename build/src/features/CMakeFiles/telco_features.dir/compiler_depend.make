# Empty compiler generated dependencies file for telco_features.
# This may be replaced when dependencies are built.
