file(REMOVE_RECURSE
  "CMakeFiles/telco_features.dir/churn_labels.cc.o"
  "CMakeFiles/telco_features.dir/churn_labels.cc.o.d"
  "CMakeFiles/telco_features.dir/feature_families.cc.o"
  "CMakeFiles/telco_features.dir/feature_families.cc.o.d"
  "CMakeFiles/telco_features.dir/graph_features.cc.o"
  "CMakeFiles/telco_features.dir/graph_features.cc.o.d"
  "CMakeFiles/telco_features.dir/topic_features.cc.o"
  "CMakeFiles/telco_features.dir/topic_features.cc.o.d"
  "CMakeFiles/telco_features.dir/wide_table.cc.o"
  "CMakeFiles/telco_features.dir/wide_table.cc.o.d"
  "libtelco_features.a"
  "libtelco_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
