file(REMOVE_RECURSE
  "libtelco_features.a"
)
