# Empty compiler generated dependencies file for telco_common.
# This may be replaced when dependencies are built.
