file(REMOVE_RECURSE
  "libtelco_common.a"
)
