file(REMOVE_RECURSE
  "CMakeFiles/telco_common.dir/logging.cc.o"
  "CMakeFiles/telco_common.dir/logging.cc.o.d"
  "CMakeFiles/telco_common.dir/math_util.cc.o"
  "CMakeFiles/telco_common.dir/math_util.cc.o.d"
  "CMakeFiles/telco_common.dir/status.cc.o"
  "CMakeFiles/telco_common.dir/status.cc.o.d"
  "CMakeFiles/telco_common.dir/string_util.cc.o"
  "CMakeFiles/telco_common.dir/string_util.cc.o.d"
  "CMakeFiles/telco_common.dir/thread_pool.cc.o"
  "CMakeFiles/telco_common.dir/thread_pool.cc.o.d"
  "libtelco_common.a"
  "libtelco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
