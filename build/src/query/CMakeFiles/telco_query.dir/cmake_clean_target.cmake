file(REMOVE_RECURSE
  "libtelco_query.a"
)
