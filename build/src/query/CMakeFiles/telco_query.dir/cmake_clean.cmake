file(REMOVE_RECURSE
  "CMakeFiles/telco_query.dir/expr.cc.o"
  "CMakeFiles/telco_query.dir/expr.cc.o.d"
  "CMakeFiles/telco_query.dir/operators.cc.o"
  "CMakeFiles/telco_query.dir/operators.cc.o.d"
  "CMakeFiles/telco_query.dir/query.cc.o"
  "CMakeFiles/telco_query.dir/query.cc.o.d"
  "libtelco_query.a"
  "libtelco_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
