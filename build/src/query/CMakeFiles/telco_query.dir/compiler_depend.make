# Empty compiler generated dependencies file for telco_query.
# This may be replaced when dependencies are built.
