file(REMOVE_RECURSE
  "libtelco_ml.a"
)
