# Empty dependencies file for telco_ml.
# This may be replaced when dependencies are built.
