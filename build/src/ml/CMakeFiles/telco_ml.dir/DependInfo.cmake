
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cc" "src/ml/CMakeFiles/telco_ml.dir/adaboost.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/adaboost.cc.o.d"
  "/root/repo/src/ml/binning.cc" "src/ml/CMakeFiles/telco_ml.dir/binning.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/binning.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/telco_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/telco_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/telco_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/drift.cc" "src/ml/CMakeFiles/telco_ml.dir/drift.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/drift.cc.o.d"
  "/root/repo/src/ml/fm.cc" "src/ml/CMakeFiles/telco_ml.dir/fm.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/fm.cc.o.d"
  "/root/repo/src/ml/gbdt.cc" "src/ml/CMakeFiles/telco_ml.dir/gbdt.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/gbdt.cc.o.d"
  "/root/repo/src/ml/imbalance.cc" "src/ml/CMakeFiles/telco_ml.dir/imbalance.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/imbalance.cc.o.d"
  "/root/repo/src/ml/linear.cc" "src/ml/CMakeFiles/telco_ml.dir/linear.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/linear.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/telco_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/telco_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/random_forest.cc.o.d"
  "/root/repo/src/ml/serialize.cc" "src/ml/CMakeFiles/telco_ml.dir/serialize.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/serialize.cc.o.d"
  "/root/repo/src/ml/validation.cc" "src/ml/CMakeFiles/telco_ml.dir/validation.cc.o" "gcc" "src/ml/CMakeFiles/telco_ml.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/telco_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/telco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
