file(REMOVE_RECURSE
  "CMakeFiles/telco_ml.dir/adaboost.cc.o"
  "CMakeFiles/telco_ml.dir/adaboost.cc.o.d"
  "CMakeFiles/telco_ml.dir/binning.cc.o"
  "CMakeFiles/telco_ml.dir/binning.cc.o.d"
  "CMakeFiles/telco_ml.dir/classifier.cc.o"
  "CMakeFiles/telco_ml.dir/classifier.cc.o.d"
  "CMakeFiles/telco_ml.dir/dataset.cc.o"
  "CMakeFiles/telco_ml.dir/dataset.cc.o.d"
  "CMakeFiles/telco_ml.dir/decision_tree.cc.o"
  "CMakeFiles/telco_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/telco_ml.dir/drift.cc.o"
  "CMakeFiles/telco_ml.dir/drift.cc.o.d"
  "CMakeFiles/telco_ml.dir/fm.cc.o"
  "CMakeFiles/telco_ml.dir/fm.cc.o.d"
  "CMakeFiles/telco_ml.dir/gbdt.cc.o"
  "CMakeFiles/telco_ml.dir/gbdt.cc.o.d"
  "CMakeFiles/telco_ml.dir/imbalance.cc.o"
  "CMakeFiles/telco_ml.dir/imbalance.cc.o.d"
  "CMakeFiles/telco_ml.dir/linear.cc.o"
  "CMakeFiles/telco_ml.dir/linear.cc.o.d"
  "CMakeFiles/telco_ml.dir/metrics.cc.o"
  "CMakeFiles/telco_ml.dir/metrics.cc.o.d"
  "CMakeFiles/telco_ml.dir/random_forest.cc.o"
  "CMakeFiles/telco_ml.dir/random_forest.cc.o.d"
  "CMakeFiles/telco_ml.dir/serialize.cc.o"
  "CMakeFiles/telco_ml.dir/serialize.cc.o.d"
  "CMakeFiles/telco_ml.dir/validation.cc.o"
  "CMakeFiles/telco_ml.dir/validation.cc.o.d"
  "libtelco_ml.a"
  "libtelco_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
