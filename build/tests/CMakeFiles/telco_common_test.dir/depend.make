# Empty dependencies file for telco_common_test.
# This may be replaced when dependencies are built.
