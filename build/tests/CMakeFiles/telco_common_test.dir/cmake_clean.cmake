file(REMOVE_RECURSE
  "CMakeFiles/telco_common_test.dir/common/math_util_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/math_util_test.cc.o.d"
  "CMakeFiles/telco_common_test.dir/common/result_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/result_test.cc.o.d"
  "CMakeFiles/telco_common_test.dir/common/rng_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/rng_test.cc.o.d"
  "CMakeFiles/telco_common_test.dir/common/status_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/status_test.cc.o.d"
  "CMakeFiles/telco_common_test.dir/common/string_util_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/string_util_test.cc.o.d"
  "CMakeFiles/telco_common_test.dir/common/thread_pool_test.cc.o"
  "CMakeFiles/telco_common_test.dir/common/thread_pool_test.cc.o.d"
  "telco_common_test"
  "telco_common_test.pdb"
  "telco_common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
