file(REMOVE_RECURSE
  "CMakeFiles/telco_features_test.dir/features/churn_labels_test.cc.o"
  "CMakeFiles/telco_features_test.dir/features/churn_labels_test.cc.o.d"
  "CMakeFiles/telco_features_test.dir/features/graph_features_test.cc.o"
  "CMakeFiles/telco_features_test.dir/features/graph_features_test.cc.o.d"
  "CMakeFiles/telco_features_test.dir/features/topic_features_test.cc.o"
  "CMakeFiles/telco_features_test.dir/features/topic_features_test.cc.o.d"
  "CMakeFiles/telco_features_test.dir/features/wide_table_test.cc.o"
  "CMakeFiles/telco_features_test.dir/features/wide_table_test.cc.o.d"
  "telco_features_test"
  "telco_features_test.pdb"
  "telco_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
