# Empty compiler generated dependencies file for telco_features_test.
# This may be replaced when dependencies are built.
