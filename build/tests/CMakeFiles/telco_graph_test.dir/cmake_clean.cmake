file(REMOVE_RECURSE
  "CMakeFiles/telco_graph_test.dir/graph/graph_test.cc.o"
  "CMakeFiles/telco_graph_test.dir/graph/graph_test.cc.o.d"
  "CMakeFiles/telco_graph_test.dir/graph/label_propagation_test.cc.o"
  "CMakeFiles/telco_graph_test.dir/graph/label_propagation_test.cc.o.d"
  "CMakeFiles/telco_graph_test.dir/graph/pagerank_test.cc.o"
  "CMakeFiles/telco_graph_test.dir/graph/pagerank_test.cc.o.d"
  "telco_graph_test"
  "telco_graph_test.pdb"
  "telco_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
