
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/graph_test.cc" "tests/CMakeFiles/telco_graph_test.dir/graph/graph_test.cc.o" "gcc" "tests/CMakeFiles/telco_graph_test.dir/graph/graph_test.cc.o.d"
  "/root/repo/tests/graph/label_propagation_test.cc" "tests/CMakeFiles/telco_graph_test.dir/graph/label_propagation_test.cc.o" "gcc" "tests/CMakeFiles/telco_graph_test.dir/graph/label_propagation_test.cc.o.d"
  "/root/repo/tests/graph/pagerank_test.cc" "tests/CMakeFiles/telco_graph_test.dir/graph/pagerank_test.cc.o" "gcc" "tests/CMakeFiles/telco_graph_test.dir/graph/pagerank_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/churn/CMakeFiles/telco_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/telco_features.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/telco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/telco_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/telco_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/telco_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/telco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/telco_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/telco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
