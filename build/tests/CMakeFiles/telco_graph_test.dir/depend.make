# Empty dependencies file for telco_graph_test.
# This may be replaced when dependencies are built.
