file(REMOVE_RECURSE
  "CMakeFiles/telco_datagen_test.dir/datagen/emitters_test.cc.o"
  "CMakeFiles/telco_datagen_test.dir/datagen/emitters_test.cc.o.d"
  "CMakeFiles/telco_datagen_test.dir/datagen/population_test.cc.o"
  "CMakeFiles/telco_datagen_test.dir/datagen/population_test.cc.o.d"
  "CMakeFiles/telco_datagen_test.dir/datagen/simulator_test.cc.o"
  "CMakeFiles/telco_datagen_test.dir/datagen/simulator_test.cc.o.d"
  "CMakeFiles/telco_datagen_test.dir/datagen/text_gen_test.cc.o"
  "CMakeFiles/telco_datagen_test.dir/datagen/text_gen_test.cc.o.d"
  "telco_datagen_test"
  "telco_datagen_test.pdb"
  "telco_datagen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_datagen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
