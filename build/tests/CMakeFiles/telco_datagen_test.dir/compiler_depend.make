# Empty compiler generated dependencies file for telco_datagen_test.
# This may be replaced when dependencies are built.
