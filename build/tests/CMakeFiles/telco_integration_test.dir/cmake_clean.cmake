file(REMOVE_RECURSE
  "CMakeFiles/telco_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/telco_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "telco_integration_test"
  "telco_integration_test.pdb"
  "telco_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
