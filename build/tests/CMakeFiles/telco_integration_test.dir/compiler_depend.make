# Empty compiler generated dependencies file for telco_integration_test.
# This may be replaced when dependencies are built.
