# Empty dependencies file for telco_query_test.
# This may be replaced when dependencies are built.
