file(REMOVE_RECURSE
  "CMakeFiles/telco_query_test.dir/query/aggregate_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/aggregate_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/expr_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/expr_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/filter_project_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/filter_project_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/join_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/join_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/property_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/property_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/query_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/query_test.cc.o.d"
  "CMakeFiles/telco_query_test.dir/query/sort_limit_union_test.cc.o"
  "CMakeFiles/telco_query_test.dir/query/sort_limit_union_test.cc.o.d"
  "telco_query_test"
  "telco_query_test.pdb"
  "telco_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
