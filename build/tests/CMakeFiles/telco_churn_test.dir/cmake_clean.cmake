file(REMOVE_RECURSE
  "CMakeFiles/telco_churn_test.dir/churn/campaign_test.cc.o"
  "CMakeFiles/telco_churn_test.dir/churn/campaign_test.cc.o.d"
  "CMakeFiles/telco_churn_test.dir/churn/churn_model_test.cc.o"
  "CMakeFiles/telco_churn_test.dir/churn/churn_model_test.cc.o.d"
  "CMakeFiles/telco_churn_test.dir/churn/pipeline_test.cc.o"
  "CMakeFiles/telco_churn_test.dir/churn/pipeline_test.cc.o.d"
  "CMakeFiles/telco_churn_test.dir/churn/retention_test.cc.o"
  "CMakeFiles/telco_churn_test.dir/churn/retention_test.cc.o.d"
  "CMakeFiles/telco_churn_test.dir/churn/root_cause_test.cc.o"
  "CMakeFiles/telco_churn_test.dir/churn/root_cause_test.cc.o.d"
  "telco_churn_test"
  "telco_churn_test.pdb"
  "telco_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
