# Empty dependencies file for telco_churn_test.
# This may be replaced when dependencies are built.
