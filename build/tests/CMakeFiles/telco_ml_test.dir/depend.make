# Empty dependencies file for telco_ml_test.
# This may be replaced when dependencies are built.
