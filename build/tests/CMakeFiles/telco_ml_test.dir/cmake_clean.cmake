file(REMOVE_RECURSE
  "CMakeFiles/telco_ml_test.dir/ml/adaboost_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/adaboost_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/binning_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/binning_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/dataset_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/dataset_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/decision_tree_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/decision_tree_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/drift_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/drift_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/fm_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/fm_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/gbdt_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/gbdt_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/imbalance_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/imbalance_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/linear_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/linear_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/random_forest_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/random_forest_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/serialize_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/serialize_test.cc.o.d"
  "CMakeFiles/telco_ml_test.dir/ml/validation_test.cc.o"
  "CMakeFiles/telco_ml_test.dir/ml/validation_test.cc.o.d"
  "telco_ml_test"
  "telco_ml_test.pdb"
  "telco_ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
