# Empty dependencies file for telco_storage_test.
# This may be replaced when dependencies are built.
