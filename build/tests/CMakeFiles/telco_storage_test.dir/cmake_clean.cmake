file(REMOVE_RECURSE
  "CMakeFiles/telco_storage_test.dir/storage/catalog_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/catalog_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/column_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/column_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/csv_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/csv_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/schema_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/schema_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/table_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/table_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/value_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/value_test.cc.o.d"
  "CMakeFiles/telco_storage_test.dir/storage/warehouse_io_test.cc.o"
  "CMakeFiles/telco_storage_test.dir/storage/warehouse_io_test.cc.o.d"
  "telco_storage_test"
  "telco_storage_test.pdb"
  "telco_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
