file(REMOVE_RECURSE
  "CMakeFiles/telco_text_test.dir/text/lda_test.cc.o"
  "CMakeFiles/telco_text_test.dir/text/lda_test.cc.o.d"
  "CMakeFiles/telco_text_test.dir/text/vocabulary_test.cc.o"
  "CMakeFiles/telco_text_test.dir/text/vocabulary_test.cc.o.d"
  "telco_text_test"
  "telco_text_test.pdb"
  "telco_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
