# Empty compiler generated dependencies file for telco_text_test.
# This may be replaced when dependencies are built.
