# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/telco_common_test[1]_include.cmake")
include("/root/repo/build/tests/telco_storage_test[1]_include.cmake")
include("/root/repo/build/tests/telco_query_test[1]_include.cmake")
include("/root/repo/build/tests/telco_graph_test[1]_include.cmake")
include("/root/repo/build/tests/telco_text_test[1]_include.cmake")
include("/root/repo/build/tests/telco_ml_test[1]_include.cmake")
include("/root/repo/build/tests/telco_datagen_test[1]_include.cmake")
include("/root/repo/build/tests/telco_features_test[1]_include.cmake")
include("/root/repo/build/tests/telco_churn_test[1]_include.cmake")
include("/root/repo/build/tests/telco_integration_test[1]_include.cmake")
add_test(cli_smoke "/root/repo/tests/tools/cli_smoke_test.sh" "/root/repo/build/tools/telcochurn")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
