# Empty compiler generated dependencies file for bench_fig1_churn_rates.
# This may be replaced when dependencies are built.
