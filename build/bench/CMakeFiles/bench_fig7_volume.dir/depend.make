# Empty dependencies file for bench_fig7_volume.
# This may be replaced when dependencies are built.
