file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_velocity.dir/bench_table5_velocity.cc.o"
  "CMakeFiles/bench_table5_velocity.dir/bench_table5_velocity.cc.o.d"
  "bench_table5_velocity"
  "bench_table5_velocity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_velocity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
