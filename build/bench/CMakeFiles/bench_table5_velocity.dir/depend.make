# Empty dependencies file for bench_table5_velocity.
# This may be replaced when dependencies are built.
