file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_recharge_distribution.dir/bench_fig5_recharge_distribution.cc.o"
  "CMakeFiles/bench_fig5_recharge_distribution.dir/bench_fig5_recharge_distribution.cc.o.d"
  "bench_fig5_recharge_distribution"
  "bench_fig5_recharge_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_recharge_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
