# Empty dependencies file for bench_table6_retention_value.
# This may be replaced when dependencies are built.
