file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_retention_value.dir/bench_table6_retention_value.cc.o"
  "CMakeFiles/bench_table6_retention_value.dir/bench_table6_retention_value.cc.o.d"
  "bench_table6_retention_value"
  "bench_table6_retention_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_retention_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
