# Empty dependencies file for bench_fig9_classifiers.
# This may be replaced when dependencies are built.
