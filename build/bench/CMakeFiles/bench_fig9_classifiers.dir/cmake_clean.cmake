file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_classifiers.dir/bench_fig9_classifiers.cc.o"
  "CMakeFiles/bench_fig9_classifiers.dir/bench_fig9_classifiers.cc.o.d"
  "bench_fig9_classifiers"
  "bench_fig9_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
