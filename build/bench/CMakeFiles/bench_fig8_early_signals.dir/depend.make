# Empty dependencies file for bench_fig8_early_signals.
# This may be replaced when dependencies are built.
