file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_early_signals.dir/bench_fig8_early_signals.cc.o"
  "CMakeFiles/bench_fig8_early_signals.dir/bench_fig8_early_signals.cc.o.d"
  "bench_fig8_early_signals"
  "bench_fig8_early_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_early_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
