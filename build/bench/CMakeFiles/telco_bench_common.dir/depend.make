# Empty dependencies file for telco_bench_common.
# This may be replaced when dependencies are built.
