file(REMOVE_RECURSE
  "libtelco_bench_common.a"
)
