file(REMOVE_RECURSE
  "CMakeFiles/telco_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/telco_bench_common.dir/bench_common.cc.o.d"
  "libtelco_bench_common.a"
  "libtelco_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telco_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
