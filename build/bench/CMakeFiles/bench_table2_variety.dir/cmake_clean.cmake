file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_variety.dir/bench_table2_variety.cc.o"
  "CMakeFiles/bench_table2_variety.dir/bench_table2_variety.cc.o.d"
  "bench_table2_variety"
  "bench_table2_variety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_variety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
