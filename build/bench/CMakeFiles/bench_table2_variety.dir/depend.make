# Empty dependencies file for bench_table2_variety.
# This may be replaced when dependencies are built.
