# Empty dependencies file for bench_table4_importance.
# This may be replaced when dependencies are built.
