file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_importance.dir/bench_table4_importance.cc.o"
  "CMakeFiles/bench_table4_importance.dir/bench_table4_importance.cc.o.d"
  "bench_table4_importance"
  "bench_table4_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
