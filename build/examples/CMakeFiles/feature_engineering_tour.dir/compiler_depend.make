# Empty compiler generated dependencies file for feature_engineering_tour.
# This may be replaced when dependencies are built.
