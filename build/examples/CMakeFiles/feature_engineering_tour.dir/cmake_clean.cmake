file(REMOVE_RECURSE
  "CMakeFiles/feature_engineering_tour.dir/feature_engineering_tour.cpp.o"
  "CMakeFiles/feature_engineering_tour.dir/feature_engineering_tour.cpp.o.d"
  "feature_engineering_tour"
  "feature_engineering_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_engineering_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
