file(REMOVE_RECURSE
  "CMakeFiles/retention_campaign.dir/retention_campaign.cpp.o"
  "CMakeFiles/retention_campaign.dir/retention_campaign.cpp.o.d"
  "retention_campaign"
  "retention_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retention_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
