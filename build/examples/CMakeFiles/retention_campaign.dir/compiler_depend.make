# Empty compiler generated dependencies file for retention_campaign.
# This may be replaced when dependencies are built.
