file(REMOVE_RECURSE
  "CMakeFiles/churner_triage.dir/churner_triage.cpp.o"
  "CMakeFiles/churner_triage.dir/churner_triage.cpp.o.d"
  "churner_triage"
  "churner_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churner_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
