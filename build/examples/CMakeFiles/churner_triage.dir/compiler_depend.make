# Empty compiler generated dependencies file for churner_triage.
# This may be replaced when dependencies are built.
