file(REMOVE_RECURSE
  "CMakeFiles/network_quality_insight.dir/network_quality_insight.cpp.o"
  "CMakeFiles/network_quality_insight.dir/network_quality_insight.cpp.o.d"
  "network_quality_insight"
  "network_quality_insight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_quality_insight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
