# Empty compiler generated dependencies file for network_quality_insight.
# This may be replaced when dependencies are built.
