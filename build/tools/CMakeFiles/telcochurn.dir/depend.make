# Empty dependencies file for telcochurn.
# This may be replaced when dependencies are built.
