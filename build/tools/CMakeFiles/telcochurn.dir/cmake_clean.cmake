file(REMOVE_RECURSE
  "CMakeFiles/telcochurn.dir/telcochurn_cli.cc.o"
  "CMakeFiles/telcochurn.dir/telcochurn_cli.cc.o.d"
  "telcochurn"
  "telcochurn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telcochurn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
