# Empty compiler generated dependencies file for telcochurn.
# This may be replaced when dependencies are built.
