
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/telcochurn_cli.cc" "tools/CMakeFiles/telcochurn.dir/telcochurn_cli.cc.o" "gcc" "tools/CMakeFiles/telcochurn.dir/telcochurn_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/churn/CMakeFiles/telco_churn.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/telco_features.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/telco_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/telco_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/telco_query.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/telco_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/telco_text.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/telco_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/telco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
